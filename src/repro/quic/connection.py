"""The QUIC connection: handshake, streams, recovery, sending logic.

This class is written path-generically so :class:`repro.core.connection.
MultipathQuicConnection` can extend it with a path manager and a packet
scheduler; a plain :class:`QuicConnection` simply never opens a second
path.  The separation mirrors the paper's observation that most QUIC
machinery (streams, frames, flow control) is already multipath-ready —
only packet-number spaces, scheduling and path management need work.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cc import make_controller
from repro.cc.base import CongestionController
from repro.netsim.engine import Simulator, Timer
from repro.netsim.node import Datagram, Host
from repro.netsim.trace import PacketTrace
from repro.obs import metrics as _metrics
from repro.obs.events import (
    CAT_CC,
    CAT_CONNECTION,
    CAT_FLOWCONTROL,
    CAT_PATH,
    CAT_RECOVERY,
    CAT_TRANSPORT,
)
from repro.quic import wire
from repro.quic.ackmgr import AckManager, MAX_ACK_DELAY
from repro.quic.config import QuicConfig
from repro.quic.flowcontrol import FlowControlError, ReceiveWindow, SendWindow
from repro.quic.frames import (
    AckFrame,
    AddAddressFrame,
    ConnectionCloseFrame,
    Frame,
    HandshakeFrame,
    PathChallengeFrame,
    PathInfo,
    PathResponseFrame,
    PathsFrame,
    PingFrame,
    StreamFrame,
    WindowUpdateFrame,
)
from repro.quic.nonce import PathAwareNonce
from repro.quic.packet import Packet, UDP_IP_OVERHEAD
from repro.quic.recovery import LossRecovery, SentPacket
from repro.quic.rtt import RttEstimator
from repro.quic.stream import RecvStream, SendStream
from repro.util import sanitize as _san


class PathLiveness(Enum):
    """Liveness of one path, as seen by the local endpoint.

    The state machine (paper §4.3, extended with RFC 9000 §8.2-style
    active probing)::

        ACTIVE ──rto/peer──▶ POTENTIALLY_FAILED ──probe timer──▶ PROBING
           ▲                     │        │                     │     │
           └──────ack/probe──────┘────────│─────────────────────┘     │
                                          ▼                           ▼
                                      ABANDONED ◀──give-up threshold──┘

    Recovery (a fresh ACK of data sent on the path, or a matching
    PATH_RESPONSE) returns the path to ``ACTIVE``; exhausting the probe
    budget retires it to ``ABANDONED``, which is terminal.
    """

    ACTIVE = "active"
    POTENTIALLY_FAILED = "potentially_failed"
    PROBING = "probing"
    ABANDONED = "abandoned"


#: Legal liveness transitions; everything else is a protocol bug (and a
#: sanitizer trip under ``REPRO_SANITIZE=1``).
LEGAL_LIVENESS_TRANSITIONS: Dict[PathLiveness, FrozenSet[PathLiveness]] = {
    PathLiveness.ACTIVE: frozenset({PathLiveness.POTENTIALLY_FAILED}),
    PathLiveness.POTENTIALLY_FAILED: frozenset(
        {PathLiveness.PROBING, PathLiveness.ACTIVE, PathLiveness.ABANDONED}
    ),
    PathLiveness.PROBING: frozenset(
        {PathLiveness.ACTIVE, PathLiveness.ABANDONED}
    ),
    PathLiveness.ABANDONED: frozenset(),
}

#: Obs event emitted on entry to each liveness state.
_LIVENESS_EVENT: Dict[PathLiveness, str] = {
    PathLiveness.ACTIVE: "recovered",
    PathLiveness.POTENTIALLY_FAILED: "potentially_failed",
    PathLiveness.PROBING: "probing",
    PathLiveness.ABANDONED: "abandoned",
}


class TransportError(Exception):
    """Fatal connection-level condition, surfaced via ``close_error``."""

    event = "error"


class IdleTimeoutError(TransportError):
    """Nothing received for ``QuicConfig.idle_timeout`` seconds."""

    event = "idle_timeout"


class HandshakeTimeoutError(TransportError):
    """Handshake incomplete after ``QuicConfig.handshake_timeout``."""

    event = "handshake_timeout"


class NoViablePathError(TransportError):
    """Every path of the connection has been abandoned."""

    event = "no_viable_path"


class PathState:
    """Everything one path owns: number space, recovery, CC, ack state.

    Per the paper's design (§3), each path has its own packet-number
    space (avoiding giant ACK frames under heterogeneous delays) and
    its own congestion-control state, while streams and flow control
    remain connection-level.
    """

    __slots__ = (
        "path_id", "interface_index", "rtt", "recovery", "ack_mgr", "cc",
        "next_packet_number", "active", "liveness", "probe_timer",
        "probe_interval", "probes_sent", "probe_seq", "last_challenge",
        "abandoned_at", "recovery_exit_pn", "tlp_count", "last_send_time",
        "last_receive_time", "rto_timer", "loss_timer", "ack_timer",
        "packets_sent", "bytes_sent", "packets_received", "bytes_received",
        "duplicated_packets", "stream_bytes_retransmitted", "reinjected_bytes",
    )

    def __init__(
        self,
        path_id: int,
        interface_index: int,
        cc: CongestionController,
        config: QuicConfig,
    ) -> None:
        self.path_id = path_id
        self.interface_index = interface_index
        self.rtt = RttEstimator(use_ack_delay=True)
        self.recovery = LossRecovery(
            self.rtt,
            packet_threshold=config.packet_reordering_threshold,
            time_fraction=config.time_reordering_fraction,
        )
        self.ack_mgr = AckManager(path_id)
        self.cc = cc
        self.next_packet_number = 0
        self.active = True
        #: Liveness state machine (see :class:`PathLiveness`); mutate
        #: only through ``QuicConnection._set_liveness`` so transitions
        #: stay legal and observable.
        self.liveness = PathLiveness.ACTIVE
        # Probe machinery (PATH_CHALLENGE / PATH_RESPONSE).
        self.probe_timer: Optional[Timer] = None
        self.probe_interval = config.probe_interval_initial
        self.probes_sent = 0
        self.probe_seq = 0
        self.last_challenge: Optional[bytes] = None
        self.abandoned_at: Optional[float] = None
        #: Loss episode bookkeeping: packets lost while the largest
        #: acknowledged number is below this mark belong to the current
        #: recovery episode and trigger no further window reduction
        #: (mirrors TCP's one-reduction-per-recovery semantics).
        self.recovery_exit_pn = -1
        #: Tail loss probes sent since the last acknowledged packet
        #: (gQUIC sends up to two TLPs before declaring an RTO).
        self.tlp_count = 0
        self.last_send_time = -1.0
        self.last_receive_time = -1.0
        # Timers (owned by the connection, slot per purpose).
        self.rto_timer: Optional[Timer] = None
        self.loss_timer: Optional[Timer] = None
        self.ack_timer: Optional[Timer] = None
        # Stats.
        self.packets_sent = 0
        self.bytes_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        self.duplicated_packets = 0
        self.stream_bytes_retransmitted = 0
        self.reinjected_bytes = 0

    @property
    def potentially_failed(self) -> bool:
        """Back-compat view: any non-ACTIVE liveness counts as failed."""
        return self.liveness is not PathLiveness.ACTIVE

    @property
    def rtt_known(self) -> bool:
        """True once the path has produced at least one RTT sample."""
        return self.rtt.has_sample

    def take_packet_number(self) -> int:
        pn = self.next_packet_number
        self.next_packet_number += 1
        return pn

    def can_send_data(self) -> bool:
        """Congestion-window room for one more data packet?

        Inlines ``cc.can_send``: this is probed per path on every send
        opportunity.
        """
        cc = self.cc
        return self.recovery.bytes_in_flight + cc.mss <= cc.cwnd_bytes


@dataclass
class ConnectionStats:
    """Aggregate counters exposed to experiments."""

    packets_sent: int = 0
    packets_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    stream_bytes_sent: int = 0
    stream_bytes_retransmitted: int = 0
    stream_bytes_received: int = 0
    handshake_completed_at: Optional[float] = None
    rto_count: int = 0
    packets_lost: int = 0
    #: Loss episodes (one per recovery period, not per packet).
    loss_events: int = 0
    #: STREAM frames re-sent after a loss declaration.
    frames_retransmitted: int = 0
    #: Packets proactively duplicated onto other paths by the scheduler.
    packets_duplicated: int = 0
    #: Stream bytes pulled off a potentially-failed/abandoned path and
    #: handed back for immediate transmission on the surviving paths
    #: (the §4.3 reinjection policy; no per-packet RTO wait).
    reinjected_bytes: int = 0
    #: Retransmittable frames reinjected the same way.
    reinjected_frames: int = 0


class QuicConnection:
    """One endpoint of a (MP)QUIC connection, attached to a host."""

    #: Stream carrying connection-level WINDOW_UPDATE frames.
    CONNECTION_FC_STREAM = 0

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        role: str,
        config: Optional[QuicConfig] = None,
        trace: Optional[PacketTrace] = None,
        connection_id: int = 0x1234,
    ) -> None:
        if role not in ("client", "server"):
            raise ValueError("role must be 'client' or 'server'")
        self.sim = sim
        self.host = host
        self.role = role
        self.config = config or QuicConfig()
        self.trace = trace
        #: Structured telemetry: set when the attached trace is a
        #: :class:`repro.obs.Tracer`.  Every emission site below guards
        #: on ``self._obs is not None`` so plain runs stay free.
        self._obs = trace if hasattr(trace, "emit") else None
        self._fc_blocked: Set[int] = set()
        self.connection_id = connection_id
        self.established = False
        self.closed = False
        #: Set when a lifetime limit (idle/handshake timeout, loss of
        #: the last viable path) terminated the connection.
        self.close_error: Optional[TransportError] = None
        self.stats = ConnectionStats()

        # Connection lifetime limits.
        self._idle_timer: Optional[Timer] = None
        self._handshake_timer: Optional[Timer] = None
        self._last_activity = sim.now
        self._drain_deadline: Optional[float] = None
        self._drain_close_echoed = False

        self.paths: Dict[int, PathState] = {}
        #: Cached ``_active_paths``/``_usable_paths`` results; path
        #: membership and liveness change orders of magnitude less
        #: often than the per-packet scheduler reads them.  Invalidated
        #: by ``_invalidate_path_cache`` on create/liveness/abandon.
        self._active_cache: Optional[List[PathState]] = None
        self._usable_cache: Optional[List[PathState]] = None
        #: Enforces the paper's nonce-uniqueness rule: the Path ID is
        #: part of the nonce, and packet numbers never repeat per path.
        self._nonce = PathAwareNonce()
        host.set_datagram_handler(self.datagram_received)

        # Streams and flow control.
        self._send_streams: Dict[int, SendStream] = {}
        self._recv_streams: Dict[int, RecvStream] = {}
        self._next_stream_id = 1 if role == "client" else 2
        cfg = self.config
        self._conn_recv_window = ReceiveWindow(
            cfg.initial_connection_window,
            cfg.max_connection_window,
            autotune=cfg.window_autotune,
        )
        self._conn_send_window = SendWindow(cfg.initial_connection_window)
        self._stream_recv_windows: Dict[int, ReceiveWindow] = {}
        self._stream_send_windows: Dict[int, SendWindow] = {}
        self._conn_recv_sum = 0  # sum of per-stream highest offsets seen
        self._stream_recv_highest: Dict[int, int] = {}
        self._stream_rr_index = 0  # round-robin cursor over send streams
        #: Per-packet constants hoisted out of the send loops: frame
        #: budget after the public header, and the multipath flag the
        #: header size depends on.  ``max_packet_size`` is fixed for the
        #: connection's lifetime, so these never go stale.
        self._multipath = cfg.enable_multipath
        self._frame_budget = cfg.max_packet_size - wire.public_header_size(True)

        # Control frames waiting to go out, per path id.  The dirty
        # flag lets the per-packet flush skip the queues entirely in
        # the (dominant) case where nothing is waiting.
        self._pending_control: Dict[int, List[Frame]] = {}
        self._control_dirty = False
        # Handshake state.
        self._handshake_sent = False
        self._handshake_acked = False
        self.peer_addresses: List[str] = []

        # Application callbacks.
        self.on_established: Optional[Callable[[], None]] = None
        self.on_stream_data: Optional[Callable[[int, bytes, bool], None]] = None
        self.on_closed: Optional[Callable[[], None]] = None

        self._in_send_loop = False

    # ------------------------------------------------------------------
    # Path setup
    # ------------------------------------------------------------------

    def _make_cc(self, path_id: int) -> CongestionController:
        return make_controller(self.config.cc_algorithm, mss=self.config.mss)

    def _create_path(self, path_id: int, interface_index: int) -> PathState:
        path = PathState(path_id, interface_index, self._make_cc(path_id), self.config)
        self.paths[path_id] = path
        self._invalidate_path_cache()
        self._pending_control.setdefault(path_id, [])
        if self._obs is not None:
            self._obs.emit(
                self.sim.now, self.host.name, CAT_PATH, "new",
                path_id, interface=interface_index,
            )
            self._wire_path_telemetry(path)
        return path

    def _wire_path_telemetry(self, path: PathState) -> None:
        """Attach the per-path tracer hooks (CC, RTT, loss recovery).

        Each hook is a closure over the tracer; the instrumented
        objects pay a single ``is None`` check when tracing is off.
        """
        obs = self._obs
        host = self.host.name
        path_id = path.path_id

        def cc_event(name: str, cc: CongestionController, _now: float) -> None:
            ssthresh = cc.ssthresh_bytes
            obs.emit(
                self.sim.now, host, CAT_CC, name, path_id,
                state=cc.state.value, cwnd=cc.cwnd_bytes,
                ssthresh=ssthresh if ssthresh != float("inf") else -1.0,
            )

        path.cc.telemetry = cc_event

        def rtt_sample(est: RttEstimator) -> None:
            if est.samples_taken == 1:
                obs.emit(
                    self.sim.now, host, CAT_PATH, "validated",
                    path_id, rtt=est.latest,
                )
            obs.emit(
                self.sim.now, host, CAT_RECOVERY, "metrics_updated", path_id,
                latest_rtt=est.latest, smoothed_rtt=est.smoothed,
                min_rtt=est.min_rtt, rtt_variance=est.variance,
            )

        path.rtt.on_sample = rtt_sample

        def packets_lost(lost: List[SentPacket]) -> None:
            for sp in lost:
                obs.emit(
                    self.sim.now, host, CAT_TRANSPORT, "packet_lost", path_id,
                    packet_number=sp.packet_number, size=sp.size,
                )

        path.recovery.on_packets_lost = packets_lost

    def _sample_path_metrics(self, path: PathState) -> None:
        """One time-series sample of the path's congestion/RTT state."""
        obs = self._obs
        now = self.sim.now
        host = self.host.name
        path_id = path.path_id
        ssthresh = path.cc.ssthresh_bytes
        obs.sample(now, host, path_id, "cwnd", path.cc.cwnd_bytes)
        obs.sample(
            now, host, path_id, "ssthresh",
            ssthresh if ssthresh != float("inf") else -1.0,
        )
        obs.sample(now, host, path_id, "srtt", path.rtt.smoothed)
        obs.sample(
            now, host, path_id, "bytes_in_flight", path.recovery.bytes_in_flight
        )

    def _ensure_path(self, path_id: int, interface_index: int) -> PathState:
        """Fetch a path, creating state for peer-initiated paths."""
        path = self.paths.get(path_id)
        if path is None:
            path = self._create_path(path_id, interface_index)
            self._on_new_remote_path(path)
        return path

    def _on_new_remote_path(self, path: PathState) -> None:
        """Hook: the peer started using a new path."""

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def connect(self, initial_interface: int = 0) -> None:
        """Client: start the secure handshake on a path.

        With ``zero_rtt`` enabled the connection is usable immediately:
        application data may ride alongside the CHLO (the repeat-
        connection resumption gQUIC offered).
        """
        if self.role != "client":
            raise ValueError("only clients connect()")
        path = self._create_path(0, initial_interface)
        self._queue_control(
            path.path_id, HandshakeFrame("CHLO", self.config.chlo_size)
        )
        self._handshake_sent = True
        if self.config.zero_rtt and not self.established:
            self.established = True
            self.stats.handshake_completed_at = self.sim.now
            self._handshake_complete()
        if self.config.handshake_timeout > 0 and not self.established:
            self._handshake_timer = self.sim.schedule(
                self.config.handshake_timeout, self._on_handshake_timer
            )
        self._arm_idle_timer()
        self._send_pending()

    def open_stream(self) -> int:
        """Create a new stream; returns its id."""
        stream_id = self._next_stream_id
        self._next_stream_id += 2
        self._get_send_stream(stream_id)
        return stream_id

    def send_stream_data(self, stream_id: int, data: bytes, fin: bool = False) -> None:
        """Write application data on a stream."""
        if self.closed:
            raise RuntimeError("connection is closed")
        self._get_send_stream(stream_id).write(data, fin)
        self._send_pending()

    def close(self, error_code: int = 0, reason: str = "") -> None:
        """Send CONNECTION_CLOSE and enter the draining period.

        The endpoint stops sending, but keeps answering stray peer
        packets with (one copy of) the final CONNECTION_CLOSE for
        ``drain_period_rtos`` retransmission timeouts (RFC 9000 §10.2),
        so a peer that missed the close does not retransmit into a
        black hole until its own idle timeout.
        """
        if self.closed:
            return
        path = self._first_usable_path()
        if path is not None:
            frames: Tuple[Frame, ...] = (
                ConnectionCloseFrame(error_code, reason),
            )
            self._send_packet(path, frames)
        timeouts = [
            p.recovery.rto_timeout(
                self.config.min_rto, self.config.max_rto, self.config.initial_rto
            )
            for p in self.paths.values()
        ]
        base_rto = max(timeouts) if timeouts else self.config.initial_rto
        self._drain_deadline = self.sim.now + self.config.drain_period_rtos * base_rto
        self.closed = True
        if self._obs is not None:
            self._obs.emit(
                self.sim.now, self.host.name, CAT_CONNECTION, "closed", -1,
                error_code=error_code, reason=reason,
                drain_until=self._drain_deadline,
            )
        self._cancel_all_timers()

    def migrate(self, interface_index: int) -> None:
        """QUIC connection migration: rebind the flow to a new address.

        This is the "hard handover" the paper contrasts with MPQUIC
        (§1): the single UDP flow moves to another interface, and path
        characteristics must be relearned — congestion and RTT state
        are reset, exactly why it is no substitute for true multipath.
        """
        path = self._first_usable_path() or next(iter(self.paths.values()))
        if path.interface_index == interface_index:
            return
        path.interface_index = interface_index
        path.cc = self._make_cc(path.path_id)
        path.rtt = RttEstimator(use_ack_delay=True)
        path.recovery.rtt = path.rtt
        if path.liveness in (
            PathLiveness.POTENTIALLY_FAILED, PathLiveness.PROBING
        ):
            self._mark_recovered(path, reason="migrated")
        path.tlp_count = 0
        if self.trace is not None:
            self.trace.log(
                self.sim.now, self.host.name, "migrate", path.path_id,
                detail=f"iface={interface_index}",
            )
        self._send_pending()

    def _on_path_potentially_failed(self, path: PathState) -> None:
        """Hook: single-path QUIC may migrate; MPQUIC overrides this."""
        if not self.config.migrate_on_failure or self.config.enable_multipath:
            return
        for iface in self.host.interfaces:
            if iface.index != path.interface_index and iface.up:
                self.migrate(iface.index)
                return

    # ------------------------------------------------------------------
    # Path liveness state machine
    # ------------------------------------------------------------------

    def _set_liveness(self, path: PathState, new: PathLiveness, **data: object) -> None:
        """Transition a path's liveness, emitting the matching obs event."""
        old = path.liveness
        if _san.SANITIZE:
            _san.check(
                new in LEGAL_LIVENESS_TRANSITIONS[old],
                "illegal path liveness transition",
                path_id=path.path_id, old=old.value, new=new.value,
            )
        path.liveness = new
        self._invalidate_path_cache()
        if self._obs is not None:
            self._obs.emit(
                self.sim.now, self.host.name, CAT_PATH,
                _LIVENESS_EVENT[new], path.path_id, **data,
            )

    def _mark_potentially_failed(self, path: PathState, source: str) -> None:
        """Enter POTENTIALLY_FAILED: reinject stranded data, start probing.

        ``source`` records who detected the failure: ``"rto"`` (local
        timeout with no network activity) or ``"peer"`` (PATHS frame).
        """
        if (
            self.closed
            or not path.active
            or path.liveness is not PathLiveness.ACTIVE
        ):
            return
        self._set_liveness(path, PathLiveness.POTENTIALLY_FAILED, source=source)
        self._reinject_in_flight(path)
        path.probes_sent = 0
        path.probe_interval = self.config.probe_interval_initial
        path.last_challenge = None
        self._schedule_probe(path)
        self._on_path_potentially_failed(path)

    def _reinject_in_flight(self, path: PathState) -> None:
        """Hand the path's retransmittable in-flight frames to the
        surviving paths immediately (paper §4.3's reaction; the policy
        De Coninck 2021 shows dominates handover latency).

        Stream frames return to their stream's retransmission queue —
        the scheduler rebinds them to the best good path on the next
        send — and control frames are requeued directly.  This is a
        scheduling decision, not a loss declaration: loss counters and
        RTO backoff are untouched (see ``LossRecovery.drain_in_flight``).
        """
        drained = path.recovery.drain_in_flight()
        if not drained:
            return
        stream_bytes = 0
        frames = 0
        for sp in drained:
            for frame in sp.frames:
                if isinstance(frame, StreamFrame):
                    stream_bytes += len(frame.data)
                    frames += 1
                elif frame.retransmittable:
                    frames += 1
            self._requeue_frames(sp.frames, path)
        path.reinjected_bytes += stream_bytes
        self.stats.reinjected_bytes += stream_bytes
        self.stats.reinjected_frames += frames
        if self._obs is not None:
            self._obs.emit(
                self.sim.now, self.host.name, CAT_PATH, "reinject",
                path.path_id, packets=len(drained), frames=frames,
                stream_bytes=stream_bytes,
            )

    def _schedule_probe(self, path: PathState) -> None:
        """Arm the probe timer at the path's current backoff interval."""
        if path.probe_timer is not None:
            path.probe_timer.cancel()
            path.probe_timer = None
        if _san.SANITIZE:
            # The interval is clamped at the update site; a value
            # outside [floor, ceiling] here means the backoff logic
            # regressed (or someone poked the path state directly).
            _san.check(
                self.config.probe_interval_initial - 1e-9
                <= path.probe_interval
                <= self.config.probe_interval_max + 1e-9,
                "probe interval outside the configured backoff bounds",
                path_id=path.path_id, interval=path.probe_interval,
                floor=self.config.probe_interval_initial,
                ceiling=self.config.probe_interval_max,
            )
        path.probe_timer = self.sim.schedule(
            path.probe_interval, self._on_probe_timer, path
        )

    def _on_probe_timer(self, path: PathState) -> None:
        path.probe_timer = None
        if self.closed or path.liveness not in (
            PathLiveness.POTENTIALLY_FAILED, PathLiveness.PROBING
        ):
            return
        if path.probes_sent >= self.config.path_max_probes:
            self._abandon_path(path, reason="probe_timeout")
            return
        if path.liveness is PathLiveness.POTENTIALLY_FAILED:
            # First probe due and still no sign of life: the suspicion
            # is now being actively verified.
            self._set_liveness(path, PathLiveness.PROBING)
        path.probe_seq += 1
        # Token salted by role so the two endpoints probing the same
        # path never mistake each other's challenges for responses.
        token = struct.pack(
            ">BBHI",
            0x43 if self.role == "client" else 0x53,
            path.path_id & 0xFF,
            0,
            path.probe_seq & 0xFFFFFFFF,
        )
        path.last_challenge = token
        path.probes_sent += 1
        self._send_packet(path, (PathChallengeFrame(token),))
        if self._obs is not None:
            self._obs.emit(
                self.sim.now, self.host.name, CAT_PATH, "probe",
                path.path_id, seq=path.probe_seq,
                interval=path.probe_interval, probes_sent=path.probes_sent,
            )
        path.probe_interval = min(
            path.probe_interval * self.config.probe_backoff,
            self.config.probe_interval_max,
        )
        self._schedule_probe(path)

    def _on_path_challenge(self, frame: PathChallengeFrame, path: PathState) -> None:
        """Echo the token on the same path (it must prove *this* path)."""
        if path.liveness is PathLiveness.ABANDONED:
            # We retired the path; stay silent and let the peer's own
            # probe budget expire.
            return
        self._send_packet(path, (PathResponseFrame(frame.data),))

    def _on_path_response(self, frame: PathResponseFrame, path: PathState) -> None:
        if frame.data != path.last_challenge:
            return  # stale or unsolicited response
        if path.liveness in (
            PathLiveness.POTENTIALLY_FAILED, PathLiveness.PROBING
        ):
            self._mark_recovered(path, reason="probe")

    def _mark_recovered(self, path: PathState, reason: str) -> None:
        """Return a suspect path to ACTIVE (emits ``path:recovered``)."""
        if path.liveness not in (
            PathLiveness.POTENTIALLY_FAILED, PathLiveness.PROBING
        ):
            return
        self._set_liveness(path, PathLiveness.ACTIVE, reason=reason)
        if path.probe_timer is not None:
            path.probe_timer.cancel()
            path.probe_timer = None
        path.probes_sent = 0
        path.probe_interval = self.config.probe_interval_initial
        path.last_challenge = None
        path.tlp_count = 0

    def _abandon_path(self, path: PathState, reason: str) -> None:
        """Retire a path for good: release its state, reroute its load.

        Terminal: the path never carries anything again.  Whatever was
        still bound to it (in-flight frames, queued control) moves to
        the surviving paths; when none remains, the connection ends
        with :class:`NoViablePathError` instead of idling forever.
        """
        if path.liveness is PathLiveness.ABANDONED:
            return
        self._set_liveness(
            path, PathLiveness.ABANDONED,
            reason=reason, probes_sent=path.probes_sent,
        )
        path.active = False
        self._invalidate_path_cache()
        path.abandoned_at = self.sim.now
        for timer in (
            path.rto_timer, path.loss_timer, path.ack_timer, path.probe_timer
        ):
            if timer is not None:
                timer.cancel()
        path.rto_timer = path.loss_timer = path.ack_timer = None
        path.probe_timer = None
        self._reinject_in_flight(path)
        pending = self._pending_control.get(path.path_id, [])
        if pending:
            self._pending_control[path.path_id] = []
            target = self._first_usable_path()
            if target is not None:
                for frame in pending:
                    if frame.retransmittable:
                        self._queue_control(target.path_id, frame)
        if _san.SANITIZE:
            _san.check(
                not path.recovery.has_eliciting_in_flight(),
                "retransmittable frames still bound to an abandoned path",
                path_id=path.path_id,
            )
            _san.check(
                not self._pending_control.get(path.path_id),
                "control frames still queued on an abandoned path",
                path_id=path.path_id,
            )
        self._on_path_abandoned(path)
        if not self._active_paths() and not self.closed:
            self._close_with_error(
                NoViablePathError("every path was abandoned"),
                error_code=0x05,
            )
        else:
            self._send_pending()

    def _on_path_abandoned(self, path: PathState) -> None:
        """Hook: MPQUIC releases coupled-CC and path-manager state."""

    # ------------------------------------------------------------------
    # Connection lifetime limits
    # ------------------------------------------------------------------

    def _arm_idle_timer(self) -> None:
        """Lazily arm the idle timer; reschedules itself on activity."""
        if (
            self.config.idle_timeout <= 0
            or self.closed
            or self._idle_timer is not None
        ):
            return
        deadline = max(
            self._last_activity + self.config.idle_timeout, self.sim.now
        )
        self._idle_timer = self.sim.schedule_at(deadline, self._on_idle_timer)

    def _on_idle_timer(self) -> None:
        self._idle_timer = None
        if self.closed:
            return
        deadline = self._last_activity + self.config.idle_timeout
        if self.sim.now + 1e-9 >= deadline:
            self._close_with_error(
                IdleTimeoutError(
                    f"nothing received for {self.config.idle_timeout}s"
                ),
                error_code=0x07,
            )
            return
        self._idle_timer = self.sim.schedule_at(deadline, self._on_idle_timer)

    def _on_handshake_timer(self) -> None:
        self._handshake_timer = None
        if self.closed or self.established:
            return
        self._close_with_error(
            HandshakeTimeoutError(
                f"handshake incomplete after {self.config.handshake_timeout}s"
            ),
            error_code=0x08,
        )

    def _close_with_error(self, error: TransportError, error_code: int) -> None:
        """Terminate with an observable transport error.

        A total blackhole thus ends in a clean, queryable state — the
        error lands in ``close_error``, a ``connection:<event>`` obs
        record explains why, and the ``on_closed`` callback fires —
        instead of the simulation hanging until its own timeout.
        """
        if self.closed:
            return
        self.close_error = error
        if self._obs is not None:
            self._obs.emit(
                self.sim.now, self.host.name, CAT_CONNECTION, error.event,
                -1, reason=str(error),
            )
        self.close(error_code=error_code, reason=str(error))
        if self.on_closed:
            self.on_closed()

    def _on_draining_datagram(self, datagram: Datagram) -> None:
        """While draining, answer one stray peer packet with the final
        CONNECTION_CLOSE (RFC 9000 §10.2), then go fully silent."""
        if self._drain_deadline is None or self._drain_close_echoed:
            return
        if self.sim.now >= self._drain_deadline:
            return
        packet: Packet = datagram.payload
        path = self.paths.get(packet.path_id)
        if path is None or not path.active:
            return
        self._drain_close_echoed = True
        self._send_packet(
            path, (ConnectionCloseFrame(0, "draining"),)
        )

    def stream_fully_acked(self, stream_id: int) -> bool:
        """True when every byte written (plus FIN) was delivered."""
        stream = self._send_streams.get(stream_id)
        return stream is not None and stream.all_acked

    @property
    def smoothed_rtt(self) -> float:
        """Best smoothed RTT across paths (0 when unknown)."""
        rtts = [p.rtt.smoothed for p in self.paths.values() if p.rtt.has_sample]
        return min(rtts) if rtts else 0.0

    # ------------------------------------------------------------------
    # Stream helpers
    # ------------------------------------------------------------------

    def _get_send_stream(self, stream_id: int) -> SendStream:
        stream = self._send_streams.get(stream_id)
        if stream is None:
            stream = SendStream(stream_id)
            self._send_streams[stream_id] = stream
            self._stream_send_windows[stream_id] = SendWindow(
                self.config.initial_stream_window
            )
        return stream

    def _get_recv_stream(self, stream_id: int) -> RecvStream:
        stream = self._recv_streams.get(stream_id)
        if stream is None:
            stream = RecvStream(stream_id)
            self._recv_streams[stream_id] = stream
            self._stream_recv_windows[stream_id] = ReceiveWindow(
                self.config.initial_stream_window,
                self.config.max_stream_window,
                autotune=self.config.window_autotune,
            )
            self._stream_recv_highest[stream_id] = 0
        return stream

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------

    def datagram_received(self, datagram: Datagram, interface_index: int) -> None:
        """Entry point for packets delivered by the simulator."""
        if _metrics.METRICS:
            # Re-scope wall time to `quic`: the simulator attributes a
            # delivery callback to the link that scheduled it, but the
            # work from here on is transport-side.
            _metrics.REGISTRY.inc("quic.packets_received")
            _metrics.REGISTRY.enter("quic")
            try:
                self._datagram_received(datagram, interface_index)
            finally:
                _metrics.REGISTRY.exit()
        else:
            self._datagram_received(datagram, interface_index)

    def _datagram_received(self, datagram: Datagram, interface_index: int) -> None:
        if self.closed:
            self._on_draining_datagram(datagram)
            return
        packet: Packet = datagram.payload
        # Inlined _ensure_path: the path exists for every packet after
        # the first on it.
        path = self.paths.get(packet.path_id)
        if path is None:
            path = self._create_path(packet.path_id, interface_index)
            self._on_new_remote_path(path)
        if path.interface_index != interface_index:
            # The peer's address changed (connection migration or NAT
            # rebinding).  Thanks to the explicit Path ID, path state —
            # RTT estimate, congestion window, packet numbers — carries
            # over (paper §3, Path Identification).
            path.interface_index = interface_index
            if self.trace is not None:
                self.trace.log(
                    self.sim.now, self.host.name, "rebind", path.path_id,
                    detail=f"iface={interface_index}",
                )
        now = self.sim.now
        size = datagram.size
        path.last_receive_time = now
        path.packets_received += 1
        path.bytes_received += size
        stats = self.stats
        stats.packets_received += 1
        stats.bytes_received += size
        self._last_activity = now
        if self._idle_timer is None:
            # Usually already armed; _on_idle_timer re-derives the
            # deadline from _last_activity when it fires.
            self._arm_idle_timer()
        # Note: receiving a packet alone does NOT recover a potentially
        # failed path — stray one-way traffic says nothing about the
        # return direction.  Recovery requires a fresh ACK of data sent
        # on the path, or a matching PATH_RESPONSE (see
        # ``_mark_recovered``).
        if self.trace is not None:
            self.trace.log(
                now, self.host.name, "recv", path.path_id,
                packet.packet_number, size,
            )
        path.ack_mgr.on_packet_received(
            packet.packet_number, now, packet.is_ack_eliciting
        )
        try:
            for frame in packet.frames:
                self._dispatch_frame(frame, path)
                if frame.poolable:
                    # Drop the in-flight pool reference the sender took
                    # for this transmission: the frame has now been
                    # observed by its receiver.
                    frame.release()
        except FlowControlError as exc:
            # A peer violating its advertised limits is a protocol
            # error: close the connection instead of crashing the host.
            self.close(error_code=0x03, reason=f"flow control: {exc}")
            return
        self._schedule_acks(path)
        self._send_pending()

    def _dispatch_frame(self, frame: Frame, path: PathState) -> None:
        if isinstance(frame, StreamFrame):
            self._on_stream_frame(frame)
        elif isinstance(frame, AckFrame):
            self._on_ack_frame(frame)
        elif isinstance(frame, WindowUpdateFrame):
            self._on_window_update(frame)
        elif isinstance(frame, HandshakeFrame):
            self._on_handshake_frame(frame, path)
        elif isinstance(frame, PathsFrame):
            self._on_paths_frame(frame, path)
        elif isinstance(frame, PathChallengeFrame):
            self._on_path_challenge(frame, path)
        elif isinstance(frame, PathResponseFrame):
            self._on_path_response(frame, path)
        elif isinstance(frame, AddAddressFrame):
            if frame.address not in self.peer_addresses:
                self.peer_addresses.append(frame.address)
        elif isinstance(frame, ConnectionCloseFrame):
            self.closed = True
            self._cancel_all_timers()
            if self.on_closed:
                self.on_closed()
        elif isinstance(frame, PingFrame):
            pass  # Being ack-eliciting is its entire job.

    def _on_handshake_frame(self, frame: HandshakeFrame, path: PathState) -> None:
        if self.role == "server" and frame.kind == "CHLO":
            if not self.established:
                self.established = True
                self.stats.handshake_completed_at = self.sim.now
                self._queue_control(
                    path.path_id, HandshakeFrame("SHLO", self.config.shlo_size)
                )
                self._advertise_addresses(path)
                self._handshake_complete()
        elif self.role == "client" and frame.kind == "SHLO":
            if not self.established:
                self.established = True
                self.stats.handshake_completed_at = self.sim.now
                self._handshake_complete()

    def _advertise_addresses(self, path: PathState) -> None:
        """Server advertises its addresses via ADD_ADDRESS (§3)."""
        for address in self.host.addresses:
            self._queue_control(path.path_id, AddAddressFrame(address))

    def _handshake_complete(self) -> None:
        """Hook extended by MPQUIC's path manager; fires the callback."""
        if self._handshake_timer is not None:
            self._handshake_timer.cancel()
            self._handshake_timer = None
        if self.config.keepalive_interval > 0:
            self.sim.schedule(self.config.keepalive_interval, self._on_keepalive)
        if self.on_established:
            self.on_established()

    def _on_keepalive(self) -> None:
        """Send a PING if this endpoint has been silent for a while."""
        if self.closed:
            return
        interval = self.config.keepalive_interval
        path = self._first_usable_path()
        if path is not None and self.sim.now - path.last_send_time >= interval:
            self._queue_control(path.path_id, PingFrame())
            self._send_pending()
        self.sim.schedule(interval, self._on_keepalive)

    def _on_stream_frame(self, frame: StreamFrame) -> None:
        stream_id = frame.stream_id
        # Inlined _get_recv_stream hit path: the stream exists for
        # every frame after the first.
        stream = self._recv_streams.get(stream_id)
        if stream is None:
            stream = self._get_recv_stream(stream_id)
        stream_window = self._stream_recv_windows[stream_id]
        highest = self._stream_recv_highest[stream_id]
        end = frame.offset + len(frame.data)
        new_highest = end if end > highest else highest
        stream_window.on_data_received(new_highest)
        if new_highest > highest:
            self._conn_recv_sum += new_highest - highest
            self._conn_recv_window.on_data_received(self._conn_recv_sum)
            self._stream_recv_highest[stream_id] = new_highest
        ready = stream.on_frame(frame)
        fin_now = stream.is_complete
        if ready or fin_now:
            self.stats.stream_bytes_received += len(ready)
            if self._obs is not None and ready:
                # Connection-level cumulative goodput series.
                self._obs.sample(
                    self.sim.now, self.host.name, -1,
                    "goodput_bytes", self.stats.stream_bytes_received,
                )
            if self.config.app_consume_rate_bps > 0:
                self._queue_consumption(frame.stream_id, len(ready))
            else:
                # The application consumes immediately.
                stream_window.on_data_consumed(len(ready))
                self._conn_recv_window.on_data_consumed(len(ready))
                self._maybe_send_window_updates(frame.stream_id)
            if self.on_stream_data:
                self.on_stream_data(frame.stream_id, ready, fin_now)

    def _queue_consumption(self, stream_id: int, n: int) -> None:
        """Model a rate-limited application reader.

        Bytes are credited back to the flow-control windows at
        ``app_consume_rate_bps``; while the reader lags, the windows
        fill up and the peer is throttled.
        """
        if n <= 0:
            return
        if not hasattr(self, "_consume_backlog"):
            self._consume_backlog: List[Tuple[int, int]] = []
            self._consume_busy = False
        self._consume_backlog.append((stream_id, n))
        if not self._consume_busy:
            self._consume_busy = True
            self._drain_consumption()

    def _drain_consumption(self) -> None:
        if self.closed or not self._consume_backlog:
            self._consume_busy = False
            return
        stream_id, n = self._consume_backlog.pop(0)
        chunk = min(n, 16 * 1024)
        if n - chunk > 0:
            self._consume_backlog.insert(0, (stream_id, n - chunk))
        delay = chunk * 8.0 / self.config.app_consume_rate_bps
        self.sim.schedule(delay, self._finish_consume, stream_id, chunk)

    def _finish_consume(self, stream_id: int, n: int) -> None:
        window = self._stream_recv_windows.get(stream_id)
        if window is not None:
            window.on_data_consumed(n)
        self._conn_recv_window.on_data_consumed(n)
        self._maybe_send_window_updates(stream_id)
        self._send_pending()
        self._drain_consumption()

    def _maybe_send_window_updates(self, stream_id: int) -> None:
        now = self.sim.now
        srtt = self.smoothed_rtt
        new_limit = self._conn_recv_window.maybe_update(now, srtt)
        if new_limit is not None:
            self._queue_window_update(
                WindowUpdateFrame(self.CONNECTION_FC_STREAM, new_limit)
            )
        stream_limit = self._stream_recv_windows[stream_id].maybe_update(now, srtt)
        if stream_limit is not None:
            self._queue_window_update(WindowUpdateFrame(stream_id, stream_limit))

    def _queue_window_update(self, frame: WindowUpdateFrame) -> None:
        """Queue a WINDOW_UPDATE; multipath sends it on every path (§3)."""
        if self.config.window_update_all_paths:
            for path in self._active_paths():
                self._queue_control(path.path_id, frame)
        else:
            path = self._first_usable_path()
            if path is not None:
                self._queue_control(path.path_id, frame)

    def _on_window_update(self, frame: WindowUpdateFrame) -> None:
        self._fc_blocked.discard(frame.stream_id)
        if frame.stream_id == self.CONNECTION_FC_STREAM:
            self._conn_send_window.update_limit(frame.byte_offset)
        else:
            window = self._stream_send_windows.get(frame.stream_id)
            if window is None:
                self._get_send_stream(frame.stream_id)
                window = self._stream_send_windows[frame.stream_id]
            window.update_limit(frame.byte_offset)

    def _on_paths_frame(self, frame: PathsFrame, path: PathState) -> None:
        """Learn the peer's path view; mark remotely-failed paths."""
        for path_id in frame.failed:
            failed_path = self.paths.get(path_id)
            if failed_path is not None:
                self._mark_potentially_failed(failed_path, source="peer")

    def _on_ack_frame(self, ack: AckFrame) -> None:
        path = self.paths.get(ack.path_id)
        if path is None:
            return
        if _san.SANITIZE:
            # The peer cannot acknowledge packet numbers this path has
            # never allocated (sent packets, eliciting or not).
            _san.check(
                ack.largest_acked < path.next_packet_number,
                "ACK covers packet numbers never sent on this path",
                largest_acked=ack.largest_acked,
                next_packet_number=path.next_packet_number,
                path_id=path.path_id,
            )
        now = self.sim.now
        result = path.recovery.on_ack_received(ack, now)
        if result.newly_acked:
            path.tlp_count = 0
            if path.liveness in (
                PathLiveness.POTENTIALLY_FAILED, PathLiveness.PROBING
            ):
                # Fresh ACK of data sent on this path: it demonstrably
                # works in both directions again.
                self._mark_recovered(path, reason="ack")
            if result.rtt_sample is not None:
                path.cc.on_ack(now, result.acked_bytes, path.rtt.latest)
            else:
                path.cc.on_ack(
                    now, result.acked_bytes, path.rtt.smoothed or path.rtt.latest
                )
            for sp in result.newly_acked:
                self._on_packet_acked(path, sp)
            if self._obs is not None:
                self._sample_path_metrics(path)
        if result.lost:
            self._handle_lost_packets(path, result.lost)
        elif path.recovery.largest_acked >= path.recovery_exit_pn:
            path.cc.exit_recovery()
        self._rearm_rto(path)
        self._rearm_loss_timer(path)

    def _on_packet_acked(self, path: PathState, sp: SentPacket) -> None:
        for frame in sp.frames:
            if isinstance(frame, StreamFrame):
                stream = self._send_streams.get(frame.stream_id)
                if stream is not None:
                    stream.on_frame_acked(frame)
            elif isinstance(frame, HandshakeFrame):
                self._handshake_acked = True
            if frame.poolable:
                # The recovery registration for this transmission is
                # resolved; release its pool reference.
                frame.release()

    def _handle_lost_packets(self, path: PathState, lost: List[SentPacket]) -> None:
        self.stats.packets_lost += len(lost)
        # One window reduction per loss episode: a new episode starts
        # only once packets sent after the previous reduction have been
        # acknowledged (same semantics as TCP fast recovery).
        if path.recovery.largest_acked >= path.recovery_exit_pn:
            path.recovery_exit_pn = path.recovery.largest_sent + 1
            self.stats.loss_events += 1
            path.cc.on_loss_event(self.sim.now, self.sim.now)
        for sp in lost:
            self._requeue_frames(sp.frames, path)
        self._on_packets_lost_hook(path, lost)

    def _on_packets_lost_hook(self, path: PathState, lost: List[SentPacket]) -> None:
        """Hook for subclasses (MPQUIC schedules across paths)."""

    def _requeue_frames(self, frames: Tuple[Frame, ...], from_path: PathState) -> None:
        """Return a lost packet's frames to the send queues.

        Crucially, stream data goes back to the *stream* retransmission
        queue, not to the path it was lost on — so MPQUIC may resend it
        anywhere (paper §3: "when a packet is marked as lost, its
        frames are not necessarily retransmitted over the same path").
        """
        for frame in frames:
            if isinstance(frame, StreamFrame):
                stream = self._send_streams.get(frame.stream_id)
                if stream is not None:
                    stream.on_frame_lost(frame)
            elif isinstance(frame, WindowUpdateFrame):
                # Only retransmit if still the freshest limit we issued.
                current = (
                    self._conn_recv_window.advertised_limit
                    if frame.stream_id == self.CONNECTION_FC_STREAM
                    else self._stream_recv_windows.get(
                        frame.stream_id,
                        self._conn_recv_window,
                    ).advertised_limit
                )
                if frame.byte_offset >= current:
                    self._queue_window_update(frame)
            elif isinstance(frame, (HandshakeFrame, AddAddressFrame, PathsFrame)):
                target = self._first_usable_path() or from_path
                self._queue_control(target.path_id, frame)
            # ACK and PING frames are never retransmitted.
            if frame.poolable:
                # Every caller hands over frames of a *popped* recovery
                # entry (lost, drained or RTO-fired), so its pool
                # reference resolves here.  Stream data was copied into
                # the stream's retransmission ranges above, not kept.
                frame.release()

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------

    def _queue_control(self, path_id: int, frame: Frame) -> None:
        path = self.paths.get(path_id)
        if path is not None and path.liveness is PathLiveness.ABANDONED:
            # Nothing may bind to a retired path; reroute (or drop when
            # the connection has nowhere left to send).
            target = self._first_usable_path()
            if target is None:
                return
            path_id = target.path_id
        self._pending_control.setdefault(path_id, []).append(frame)
        self._control_dirty = True

    def _invalidate_path_cache(self) -> None:
        """Drop the cached path lists after a membership/liveness change."""
        self._active_cache = None
        self._usable_cache = None

    def _active_paths(self) -> List[PathState]:
        cached = self._active_cache
        if cached is None:
            cached = [p for p in self.paths.values() if p.active]
            self._active_cache = cached
        return cached

    def _usable_paths(self) -> List[PathState]:
        """Active paths, preferring fully-live ones.

        ACTIVE paths are the normal candidates.  When none exists,
        paths still in POTENTIALLY_FAILED remain a last resort — the
        failure is only suspected, and stopping entirely would turn a
        false alarm into a stall.  PROBING paths have confirmed
        silence (a probe has already gone unanswered) and ABANDONED
        paths are retired, so neither ever carries fresh data.

        The returned list is cached (and therefore shared): callers
        must treat it as read-only.
        """
        cached = self._usable_cache
        if cached is not None:
            return cached
        active = self._active_paths()
        good = [p for p in active if p.liveness is PathLiveness.ACTIVE]
        if not good:
            good = [
                p for p in active
                if p.liveness is PathLiveness.POTENTIALLY_FAILED
            ]
        self._usable_cache = good
        return good

    def _first_usable_path(self) -> Optional[PathState]:
        paths = self._usable_paths()
        return paths[0] if paths else None

    def _select_data_path(self) -> Optional[PathState]:
        """Pick the path for the next data packet (overridden by MPQUIC)."""
        for path in self._usable_paths():
            if path.can_send_data():
                return path
        return None

    def _send_pending(self) -> None:
        """Drain everything currently sendable.

        Re-entrant calls (e.g. triggered from within frame dispatch)
        are flattened to avoid interleaved packet construction.
        """
        if self._in_send_loop or self.closed:
            return
        self._in_send_loop = True
        try:
            self._flush_control_and_acks()
            self._send_data_packets()
        finally:
            self._in_send_loop = False

    def _flush_control_and_acks(self) -> None:
        """Send control frames and due ACKs, ignoring the cwnd.

        Control/ACK packets are tiny; QUIC does not block ACKs on
        congestion control.
        """
        # Iterating self.paths directly is safe: packet delivery runs
        # via scheduled timers, so _send_packet never creates paths
        # reentrantly.  Per-packet constants are hoisted (_frame_budget).
        paths = self.paths
        if self._control_dirty:
            self._control_dirty = False
            pending_control = self._pending_control
            for path in paths.values():
                pending = pending_control.get(path.path_id)
                while pending:
                    frames: List[Frame] = []
                    # reserve room to piggyback an ACK
                    budget = self._frame_budget - 64
                    target = path if path.active else (self._first_usable_path() or path)
                    while pending and pending[0].wire_size() <= budget:
                        frame = pending.pop(0)
                        frames.append(frame)
                        budget -= frame.wire_size()
                    if not frames:
                        break  # oversized control frame; should not happen
                    ack = self._pending_ack_frame(target)
                    if ack is not None and ack.wire_size() <= budget + 64:
                        frames.insert(0, ack)
                    self._send_packet(target, tuple(frames))
        for path in paths.values():
            if path.ack_mgr.should_ack_now():
                target = path if (path.active and not path.potentially_failed) else (
                    self._first_usable_path() or path
                )
                ack = path.ack_mgr.build_ack(self.sim.now)
                if ack is not None:
                    self._send_packet(target, (ack,))

    def _pending_ack_frame(self, path: PathState) -> Optional[AckFrame]:
        """Piggyback an ACK for this path if one is pending.

        The pending state is committed, so the caller must actually
        place the returned frame in a packet (or check the size budget
        via ``build_ack(commit=False)`` first).
        """
        if path.ack_mgr.ack_pending:
            return path.ack_mgr.build_ack(self.sim.now)
        return None

    def _send_data_packets(self) -> None:
        # Fast exit: _flush_control_and_acks already drained the
        # pending-control queues, so a data packet can only come from a
        # stream with bytes (or a FIN) left to send — skip path
        # selection and frame assembly entirely otherwise.  The 1 << 62
        # budget asks "could this stream ever send" while ignoring
        # flow-control windows, so window-blocked streams still enter
        # the loop and get their blocked event recorded.
        if not (self.established or self.role == "server"):
            return
        for stream in self._send_streams.values():
            if stream.has_data_to_send(1 << 62):
                break
        else:
            return
        while True:
            path = self._select_data_path()
            if path is None:
                return
            frames, new_bytes = self._build_data_frames(path)
            if not frames:
                return
            if self._obs is not None:
                # Histogram of where data packets actually landed
                # (selections that produced no packet are not counted).
                self._obs.sched_decision(
                    self.sim.now, self.host.name, path.path_id
                )
            packet = self._send_packet(path, tuple(frames))
            self._after_data_packet_sent(path, packet, new_bytes)

    def _after_data_packet_sent(self, path: PathState, packet: Packet, new_bytes: int) -> None:
        """Hook: MPQUIC duplicates onto RTT-unknown paths here."""

    def _build_data_frames(self, path: PathState) -> Tuple[List[Frame], int]:
        """Assemble a data packet's frames for ``path``.

        Returns the frames plus how many *new* (never-sent) stream
        bytes they carry.  Piggybacks a pending ACK and any queued
        control frames first, then fills with stream data under both
        the connection and per-stream flow-control windows.
        """
        frames: List[Frame] = []
        ack_reserve = 64
        budget = self._frame_budget - ack_reserve
        pending = self._pending_control.get(path.path_id)
        while pending and pending[0].wire_size() <= budget:
            frame = pending.pop(0)
            frames.append(frame)
            budget -= frame.wire_size()
        new_bytes_total = 0
        if self.established or self.role == "server":
            # Round-robin across streams so concurrent downloads share
            # the connection instead of the oldest stream monopolising
            # it (per-object fairness, as in HTTP/2 default weights).
            send_streams = self._send_streams
            n_streams = len(send_streams)
            stream_ids: Iterable[int]
            if n_streams > 1:
                ids = list(send_streams)
                idx = self._stream_rr_index % n_streams
                stream_ids = ids[idx:] + ids[:idx]
                self._stream_rr_index = idx + 1
            else:
                # Single stream (the dominant case): rotation is a
                # no-op, so iterate the dict keys directly — but keep
                # the cursor exactly where the general path would
                # leave it.
                stream_ids = send_streams
                if n_streams:
                    self._stream_rr_index = 1
            conn_window = self._conn_send_window
            stats = self.stats
            for stream_id in stream_ids:
                stream = send_streams[stream_id]
                if budget < 32:
                    break
                window = self._stream_send_windows[stream_id]
                conn_budget = conn_window.available
                flow_budget = min(window.available, conn_budget)
                if not stream.has_data_to_send(flow_budget):
                    if flow_budget == 0 and stream.has_data_to_send(1 << 62):
                        self._note_flow_blocked(stream_id, window, conn_budget)
                    continue
                header_overhead = 16
                result = stream.next_frame(
                    budget - header_overhead,
                    flow_budget,
                )
                if result is None:
                    continue
                frame, new_bytes = result
                if new_bytes:
                    window.consume(new_bytes)
                    conn_window.consume(new_bytes)
                    stats.stream_bytes_sent += new_bytes
                else:
                    stats.stream_bytes_retransmitted += len(frame.data)
                    stats.frames_retransmitted += 1
                    path.stream_bytes_retransmitted += len(frame.data)
                    if self._obs is not None:
                        self._obs.emit(
                            self.sim.now, self.host.name, CAT_RECOVERY,
                            "retransmit", path.path_id,
                            stream_id=stream_id, offset=frame.offset,
                            bytes=len(frame.data),
                        )
                new_bytes_total += new_bytes
                frames.append(frame)
                budget -= frame.wire_size()
        if not frames:
            return [], 0
        # Piggyback a pending ACK for this path on the data packet
        # (inlined _pending_ack_frame: this runs once per data packet).
        ack_mgr = path.ack_mgr
        if ack_mgr.ack_pending:
            ack = ack_mgr.build_ack(self.sim.now)
            if ack is not None and ack.wire_size() <= budget + ack_reserve:
                frames.insert(0, ack)
        return frames, new_bytes_total

    def _note_flow_blocked(
        self, stream_id: int, window: SendWindow, conn_budget: int
    ) -> None:
        """Record a flow-control stall (coalesced per blocked window).

        Emitted once per blocked window until the matching
        WINDOW_UPDATE lifts the limit again; mirrors qlog's
        ``flow_control_blocked`` / IETF BLOCKED signal.
        """
        if window.available == 0:
            blocked_id, blocked_window = stream_id, window
        else:
            blocked_id, blocked_window = (
                self.CONNECTION_FC_STREAM, self._conn_send_window
            )
        if blocked_id in self._fc_blocked:
            return
        self._fc_blocked.add(blocked_id)
        blocked_window.note_blocked()
        if self._obs is not None:
            self._obs.emit(
                self.sim.now, self.host.name, CAT_FLOWCONTROL, "blocked", -1,
                stream_id=blocked_id, limit=blocked_window.limit,
            )

    def _send_packet(self, path: PathState, frames: Tuple[Frame, ...]) -> Packet:
        """Emit one packet on a path and register it with recovery."""
        pn = path.next_packet_number
        path.next_packet_number = pn + 1
        packet = Packet(
            path_id=path.path_id,
            packet_number=pn,
            frames=frames,
            connection_id=self.connection_id,
            multipath=self._multipath,
        )
        # Every transmission (including retransmitted data, which gets a
        # fresh packet number) must map to a unique AEAD nonce (§3).
        self._nonce.derive(path.path_id, packet.packet_number)
        if _san.SANITIZE:
            # A retired path owns no congestion/recovery state any more;
            # binding retransmittable frames to it would strand them.
            _san.check(
                path.liveness is not PathLiveness.ABANDONED
                or not packet.is_ack_eliciting,
                "retransmittable frame bound to an abandoned path",
                path_id=path.path_id,
                packet_number=packet.packet_number,
            )
        # One pool reference per transmission: the datagram (and the
        # receiver dispatching it) observe these frames asynchronously.
        # Dropped datagrams never release — the frame then simply falls
        # to the garbage collector instead of the pool.
        for frame in frames:
            if frame.poolable:
                frame.retain()
        size = packet.wire_size + UDP_IP_OVERHEAD
        datagram = Datagram(payload=packet, size=size)
        now = self.sim.now
        path.last_send_time = now
        path.packets_sent += 1
        path.bytes_sent += size
        stats = self.stats
        stats.packets_sent += 1
        stats.bytes_sent += size
        if packet.is_ack_eliciting:
            path.recovery.on_packet_sent(
                packet.packet_number, frames, size, now, ack_eliciting=True
            )
            # Sending only pushes the RTO deadline *later* (it advanced
            # time_of_last_eliciting), so an already-armed wakeup is
            # still conservative: the fire handler re-derives the
            # deadline from recovery state and re-arms as needed.  Only
            # arm from scratch when no live timer exists.
            timer = path.rto_timer
            if timer is None or timer.cancelled:
                self._rearm_rto(path)
        if _metrics.METRICS:
            _metrics.REGISTRY.inc("quic.packets_sent")
        if self.trace is not None:
            self.trace.log(
                now, self.host.name, "send", path.path_id,
                packet.packet_number, size,
            )
        # Direct interface dispatch (Host.send is a pure forwarder).
        self.host.interfaces[path.interface_index].send(datagram)
        return packet

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _schedule_acks(self, path: PathState) -> None:
        """Arm the delayed-ACK timer when an ACK is pending but not due."""
        if path.ack_mgr.ack_pending and not path.ack_mgr.should_ack_now():
            if path.ack_timer is None or path.ack_timer.cancelled:
                path.ack_timer = self.sim.schedule(
                    MAX_ACK_DELAY, self._on_ack_timer, path
                )

    def _on_ack_timer(self, path: PathState) -> None:
        if path.ack_timer is not None:
            path.ack_timer.cancelled = True
            path.ack_timer = None
        if self.closed or not path.ack_mgr.ack_pending:
            return
        ack = path.ack_mgr.build_ack(self.sim.now)
        if ack is not None:
            target = path if (path.active and not path.potentially_failed) else (
                self._first_usable_path() or path
            )
            self._send_packet(target, (ack,))

    def _rto_deadline(self, path: PathState) -> float:
        """Current retransmission deadline for ``path``.

        While fewer than two tail loss probes have gone unanswered and
        an RTT estimate exists, the deadline lands earlier (~2 smoothed
        RTTs, as in gQUIC's TLP) so a probe goes out instead of a
        window collapse.
        """
        timeout = path.recovery.rto_timeout(
            self.config.min_rto, self.config.max_rto, self.config.initial_rto
        )
        if path.tlp_count < 2 and path.rtt.has_sample:
            timeout = min(timeout, max(2.0 * path.rtt.smoothed, 0.01))
        return max(
            path.recovery.time_of_last_eliciting + timeout, self.sim.now
        )

    def _rearm_rto(self, path: PathState) -> None:
        """Arm the retransmission timer (deadline-check-on-fire).

        The armed timer is a *wakeup*, not the deadline itself: every
        ACK and every transmission used to cancel + reschedule it, a
        pair of heap operations per packet.  Instead the timer is left
        alone whenever the deadline only moved later — ``_on_rto``
        recomputes the true deadline when it fires and re-arms if it
        woke early.  Only a deadline earlier than the armed wakeup
        forces a reschedule, so the common case is one comparison and
        zero heap traffic.
        """
        if self.closed or not path.recovery.has_eliciting_in_flight():
            # Leave any armed timer in place: it re-checks on fire and
            # no-ops, which is cheaper than cancelling per ACK.
            return
        deadline = self._rto_deadline(path)
        timer = path.rto_timer
        if timer is not None and not timer.cancelled:
            if timer.time <= deadline:
                return
            timer.cancel()
        path.rto_timer = self.sim.schedule_at(deadline, self._on_rto, path)

    def _rearm_loss_timer(self, path: PathState) -> None:
        next_time = path.recovery.next_loss_time(self.sim.now)
        if next_time is None or self.closed:
            # Leave any armed timer; it re-checks on fire and no-ops.
            return
        # Small offset so the >= comparison in loss detection is
        # guaranteed to hold when the timer fires.
        wake = max(next_time + 1e-6, self.sim.now)
        timer = path.loss_timer
        if timer is not None and not timer.cancelled:
            if timer.time <= wake:
                return
            timer.cancel()
        path.loss_timer = self.sim.schedule_at(wake, self._on_loss_timer, path)

    def _on_loss_timer(self, path: PathState) -> None:
        path.loss_timer = None
        if self.closed:
            return
        now = self.sim.now
        next_time = path.recovery.next_loss_time(now)
        if next_time is not None and now < next_time - 1e-9:
            # Early wakeup: the earliest possible time-threshold loss
            # moved later since arming (the suspect packets were acked).
            path.loss_timer = self.sim.schedule_at(
                max(next_time + 1e-6, now), self._on_loss_timer, path
            )
            return
        lost = path.recovery.detect_losses_now(now)
        if lost:
            self._handle_lost_packets(path, lost)
        self._rearm_loss_timer(path)
        self._send_pending()

    def _on_rto(self, path: PathState) -> None:
        path.rto_timer = None
        if self.closed or not path.recovery.has_eliciting_in_flight():
            return
        now = self.sim.now
        deadline = self._rto_deadline(path)
        if now < deadline - 1e-9:
            # Early wakeup: the deadline moved later since this timer
            # was armed (new transmissions or fresh ACKs).
            path.rto_timer = self.sim.schedule_at(
                deadline, self._on_rto, path
            )
            return
        if path.tlp_count < 2 and path.rtt.has_sample:
            self._send_tail_loss_probe(path)
            self._rearm_rto(path)
            return
        path.cc.on_rto(now)
        # "Potentially failed": an RTO with no network activity since the
        # last packet transmission (paper §4.3, mirroring MPTCP's logic).
        # Entering the state reinjects the whole in-flight window onto
        # the surviving paths at once, so the RTO drain below finds
        # nothing left — no per-packet RTO wait for the backlog.
        if (
            path.liveness is PathLiveness.ACTIVE
            and path.last_receive_time < path.last_send_time
        ):
            self._mark_potentially_failed(path, source="rto")
        lost = path.recovery.on_rto_fired(now)
        path.recovery_exit_pn = path.recovery.largest_sent + 1
        self.stats.rto_count += 1
        self.stats.packets_lost += len(lost)
        for sp in lost:
            self._requeue_frames(sp.frames, path)
        if self.trace is not None:
            self.trace.log(now, self.host.name, "rto", path.path_id)
        self._rearm_rto(path)
        self._send_pending()

    def _send_tail_loss_probe(self, path: PathState) -> None:
        """Re-send the newest unacked packet's frames as a fresh packet.

        Elicits an ACK that lets ordinary loss detection flush any tail
        loss without the window collapse of a full RTO.
        """
        path.tlp_count += 1
        newest_pn = max(
            (pn for pn, sp in path.recovery.sent.items() if sp.ack_eliciting),
            default=None,
        )
        if newest_pn is None:
            return
        frames = tuple(
            f for f in path.recovery.sent[newest_pn].frames if f.retransmittable
        )
        if not frames:
            frames = (PingFrame(),)
        self._send_packet(path, frames)
        if self.trace is not None:
            self.trace.log(self.sim.now, self.host.name, "tlp", path.path_id)

    def _cancel_all_timers(self) -> None:
        for path in self.paths.values():
            for timer in (
                path.rto_timer, path.loss_timer, path.ack_timer,
                path.probe_timer,
            ):
                if timer is not None:
                    timer.cancel()
            path.rto_timer = path.loss_timer = path.ack_timer = None
            path.probe_timer = None
        for conn_timer in (self._idle_timer, self._handshake_timer):
            if conn_timer is not None:
                conn_timer.cancel()
        self._idle_timer = self._handshake_timer = None

    # ------------------------------------------------------------------
    # Introspection used by tests and experiments
    # ------------------------------------------------------------------

    @property
    def total_stream_bytes_received(self) -> int:
        return self.stats.stream_bytes_received

    def path_stats(self) -> Dict[int, Dict[str, float]]:
        """Per-path summary used by experiments and the PATHS frame."""
        out: Dict[int, Dict[str, float]] = {}
        for path_id, path in self.paths.items():
            out[path_id] = {
                "packets_sent": path.packets_sent,
                "packets_received": path.packets_received,
                "bytes_sent": path.bytes_sent,
                "srtt": path.rtt.smoothed,
                "lost": path.recovery.packets_lost_total,
                "rtos": path.recovery.rto_count,
                "retransmitted_bytes": path.stream_bytes_retransmitted,
                "duplicated": path.duplicated_packets,
                "potentially_failed": float(path.potentially_failed),
                "reinjected_bytes": float(path.reinjected_bytes),
            }
        return out
