"""White-box tests of TcpFlow internals: SACK recency, Karn probe,
TLP arming, loss marking and pipe accounting."""

import pytest

from repro.cc import make_controller
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.tcp.config import TcpConfig
from repro.tcp.flow import FlowOwner, FlowState, TcpFlow
from repro.tcp.segment import Segment


class RecordingOwner(FlowOwner):
    def __init__(self):
        self.delivered = bytearray()
        self.established = False
        self.rtos = 0
        self.window_edge = 10**9

    def flow_established(self, flow):
        self.established = True

    def flow_delivered(self, flow, data, fin):
        self.delivered.extend(data)

    def flow_window_edge(self, flow):
        return self.window_edge

    def flow_on_rto(self, flow):
        self.rtos += 1


def make_flow(role="client", mss=1000):
    sim = Simulator()
    topo = TwoPathTopology(sim, [PathConfig(10, 20, 100)], seed=1)
    host = topo.client if role == "client" else topo.server
    owner = RecordingOwner()
    cfg = TcpConfig(mss=mss, use_tls=False)
    flow = TcpFlow(
        sim, host, 0, role, cfg, make_controller("cubic", mss=mss), owner
    )
    return sim, topo, flow, owner


def established_flow():
    """A flow forced into ESTABLISHED without running the handshake."""
    sim, topo, flow, owner = make_flow()
    flow.state = FlowState.ESTABLISHED
    flow.peer_window_edge = 10**9
    flow.rtt.update(0.02)
    return sim, topo, flow, owner


class TestSackBlocks:
    def test_block_of_last_arrival_reported_first(self):
        sim, topo, flow, owner = established_flow()
        flow.reassembler.insert(100, b"x" * 10)   # old block
        flow._last_block_received = (100, 110)
        flow.reassembler.insert(300, b"y" * 10)   # new block
        flow._last_block_received = (300, 310)
        blocks = flow._sack_blocks()
        # Most recent block (300) first despite another higher/lower.
        assert blocks[0] == (301, 311)  # +SEQ_BASE

    def test_at_most_three_blocks(self):
        sim, topo, flow, owner = established_flow()
        for start in (100, 200, 300, 400, 500):
            flow.reassembler.insert(start, b"z" * 10)
        assert len(flow._sack_blocks()) == 3

    def test_no_blocks_when_in_order(self):
        sim, topo, flow, owner = established_flow()
        flow.reassembler.insert(0, b"a" * 10)
        flow.reassembler.pop_ready()
        assert flow._sack_blocks() == ()


class TestKarnProbe:
    def test_probe_set_on_new_data(self):
        sim, topo, flow, owner = established_flow()
        flow.write(b"d" * 500)
        assert flow._rtt_probe is not None

    def test_probe_invalidated_by_retransmission(self):
        sim, topo, flow, owner = established_flow()
        flow.write(b"d" * 500)
        flow._retx_queue.add(1, 501)
        flow.try_send()  # retransmits the probed range
        assert flow._rtt_probe is None

    def test_sample_absorbed_on_covering_ack(self):
        sim, topo, flow, owner = established_flow()
        before = flow.rtt.samples_taken
        flow.write(b"d" * 500)
        # Ack before the tail loss probe fires (at ~2 smoothed RTTs),
        # which would retransmit the range and invalidate the probe.
        sim.run(until=0.03)
        flow.segment_received(
            Segment(seq=1, ack=501, window_edge=10**9)
        )
        assert flow.rtt.samples_taken == before + 1
        assert flow.rtt.latest == pytest.approx(0.03)


class TestLossMarking:
    def test_hole_marked_with_enough_sack_above(self):
        sim, topo, flow, owner = established_flow()
        flow.write(b"d" * 10_000)
        sim.run(until=0.001)
        mss = flow.config.mss
        # SACK blocks covering 3*MSS above the first segment.
        sack = ((1 + mss, 1 + 4 * mss),)
        flow.segment_received(
            Segment(seq=1, ack=1, window_edge=10**9, sack_blocks=sack)
        )
        assert flow._retx_queue.total + flow._retransmitted_ever.total >= mss
        assert flow.in_recovery

    def test_small_sack_does_not_mark_midstream(self):
        sim, topo, flow, owner = established_flow()
        flow.write(b"d" * 50_000)  # plenty of unsent data remains
        sim.run(until=0.001)
        mss = flow.config.mss
        sack = ((1 + mss, 1 + 2 * mss),)  # only 1 MSS above the hole
        flow.segment_received(
            Segment(seq=1, ack=1, window_edge=10**9, sack_blocks=sack)
        )
        assert not flow.in_recovery

    def test_one_reduction_per_recovery(self):
        sim, topo, flow, owner = established_flow()
        flow.write(b"d" * 50_000)
        sim.run(until=0.001)
        mss = flow.config.mss
        flow.segment_received(
            Segment(seq=1, ack=1, window_edge=10**9,
                    sack_blocks=((1 + mss, 1 + 4 * mss),))
        )
        cwnd_after_first = flow.cc.cwnd_bytes
        flow.segment_received(
            Segment(seq=1, ack=1, window_edge=10**9,
                    sack_blocks=((1 + 5 * mss, 1 + 9 * mss),))
        )
        assert flow.cc.cwnd_bytes == cwnd_after_first


class TestPipeAccounting:
    def test_outstanding_excludes_sacked_and_marked(self):
        sim, topo, flow, owner = established_flow()
        flow.write(b"d" * 10_000)
        sim.run(until=0.001)
        raw = flow.snd_nxt - flow.snd_una
        flow._sacked.add(2001, 3001)
        assert flow.bytes_outstanding == raw - 1000
        flow._retx_queue.add(1, 1001)
        assert flow.bytes_outstanding == raw - 2000


class TestTlpArming:
    def test_tlp_timer_armed_with_outstanding_data(self):
        sim, topo, flow, owner = established_flow()
        flow.write(b"d" * 3000)
        assert flow._tlp_timer is not None

    def test_tlp_not_armed_without_rtt_sample(self):
        sim, topo, flow, owner = make_flow()
        flow.state = FlowState.ESTABLISHED
        flow.peer_window_edge = 10**9
        flow.write(b"d" * 3000)
        assert flow._tlp_timer is None

    def test_tlp_probe_fires_and_is_single_shot(self):
        sim, topo, flow, owner = established_flow()
        topo.forward_links[0].set_loss_rate(1.0)  # everything dies
        flow.write(b"d" * 3000)
        sim.run(until=flow._tlp_interval() + 0.01)
        assert flow.tlp_probes == 1
        sim.run(until=flow._tlp_interval() * 3)
        assert flow.tlp_probes == 1  # no further probes before RTO

    def test_rto_follows_failed_tlp(self):
        sim, topo, flow, owner = established_flow()
        topo.forward_links[0].set_loss_rate(1.0)
        flow.write(b"d" * 3000)
        sim.run(until=2.0)
        assert owner.rtos >= 1
        assert flow.potentially_failed
