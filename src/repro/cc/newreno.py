"""NewReno congestion control (RFC 6582 dynamics, byte-counting)."""

from __future__ import annotations

from repro.cc.base import CcState, CongestionController, MIN_WINDOW_SEGMENTS


class NewReno(CongestionController):
    """Classic AIMD: slow start, then +1 MSS per RTT, halve on loss."""

    BETA = 0.5

    def on_ack(self, now: float, acked_bytes: int, rtt: float) -> None:
        if self.state is CcState.RECOVERY:
            return  # No growth during recovery.
        if self.in_slow_start:
            self.cwnd_bytes += acked_bytes
            if self.cwnd_bytes >= self.ssthresh_bytes:
                self.state = CcState.CONGESTION_AVOIDANCE
        else:
            self.state = CcState.CONGESTION_AVOIDANCE
            self.cwnd_bytes += self.mss * acked_bytes / self.cwnd_bytes

    def _reduce_on_loss(self, now: float) -> None:
        self.ssthresh_bytes = max(
            self.cwnd_bytes * self.BETA, MIN_WINDOW_SEGMENTS * self.mss
        )
        self.cwnd_bytes = self.ssthresh_bytes
