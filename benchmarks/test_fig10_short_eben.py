"""E8 / Fig. 10 — GET 256 KB: multipath is not useful for short
transfers.

Paper shape: the handshake and slow-start dominate; aggregation benefit
stays low (and can be negative when starting on the worst path).
"""

from repro.experiments.figures import fig10
from repro.experiments.metrics import median

from benchmarks.common import BENCH_CONFIG, run_once


def _both(buckets):
    return buckets["best_first"] + buckets["worst_first"]


def test_fig10_short_transfers_multipath_useless(benchmark):
    data = run_once(benchmark, lambda: fig10(BENCH_CONFIG))
    mpquic = _both(data["mpquic_vs_quic"])
    # Little benefit for 256 KB transfers (paper: "multipath is not
    # really desirable for short transfers").
    assert median(mpquic) < 0.5
    # Worst-path-first is no better than best-path-first.
    assert (
        median(data["mpquic_vs_quic"]["worst_first"])
        <= median(data["mpquic_vs_quic"]["best_first"]) + 0.25
    )
