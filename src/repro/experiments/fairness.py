"""Shared-bottleneck fairness experiment (why the paper picks OLIA, §3).

"To achieve a fair distribution of network resources ... using CUBIC in
a multipath protocol would cause unfairness" — an MPQUIC connection
whose two paths cross the SAME bottleneck should take roughly one fair
share of it when coupled (OLIA), but closer to two shares when each
path runs an independent controller.

The experiment races one MPQUIC connection (two paths over one
bottleneck) against one single-path QUIC competitor and reports the
bottleneck share each obtained in steady state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro.core.connection import MultipathQuicConnection
from repro.netsim.bottleneck import SharedBottleneckTopology
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection

#: Default bottleneck: 20 Mbps, 40 ms RTT, 100 ms of buffer.
DEFAULT_BOTTLENECK = PathConfig(
    capacity_mbps=20.0, rtt_ms=40.0, queuing_delay_ms=100.0
)


@dataclass
class FairnessResult:
    """Steady-state bottleneck split between the two connections."""

    multipath_cc: str
    mp_goodput_bps: float
    competitor_goodput_bps: float
    duration: float

    @property
    def mp_share(self) -> float:
        """Fraction of the delivered bytes the multipath flow took."""
        total = self.mp_goodput_bps + self.competitor_goodput_bps
        return self.mp_goodput_bps / total if total > 0 else 0.0


def run_fairness(
    multipath_cc: str = "olia",
    bottleneck: PathConfig = DEFAULT_BOTTLENECK,
    duration: float = 20.0,
    warmup: float = 4.0,
    seed: int = 1,
) -> FairnessResult:
    """Race MPQUIC (both paths on one bottleneck) against plain QUIC.

    Both connections run a long download; goodput is counted between
    ``warmup`` and ``warmup + duration`` so slow-start transients are
    excluded.
    """
    sim = Simulator()
    topo = SharedBottleneckTopology(sim, bottleneck, with_competitor=True, seed=seed)
    mp_cfg = QuicConfig(multipath_cc=multipath_cc)
    mp_client = MultipathQuicConnection(sim, topo.client, "client", mp_cfg)
    mp_server = MultipathQuicConnection(sim, topo.server, "server", QuicConfig(multipath_cc=multipath_cc))
    sp_client = QuicConnection(sim, topo.competitor_client, "client", QuicConfig())
    sp_server = QuicConnection(sim, topo.competitor_server, "server", QuicConfig())

    total_bytes = int(bottleneck.rate_bps / 8.0 * (warmup + duration) * 2)
    counters = {"mp": 0, "sp": 0}
    window = {"mp": 0, "sp": 0}

    def serve(server: Any, key: str) -> Callable[[int, bytes, bool], None]:
        state: Dict[int, bool] = {}

        def on_data(sid: int, data: bytes, fin: bool) -> None:
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"x" * total_bytes, fin=True)

        return on_data

    mp_server.on_stream_data = serve(mp_server, "mp")
    sp_server.on_stream_data = serve(sp_server, "sp")

    def count(key: str) -> Callable[[int, bytes, bool], None]:
        def on_data(sid: int, data: bytes, fin: bool) -> None:
            counters[key] += len(data)

        return on_data

    mp_client.on_stream_data = count("mp")
    sp_client.on_stream_data = count("sp")
    mp_client.on_established = lambda: mp_client.send_stream_data(
        mp_client.open_stream(), b"GET", fin=True
    )
    sp_client.on_established = lambda: sp_client.send_stream_data(
        sp_client.open_stream(), b"GET", fin=True
    )
    mp_client.connect()
    sp_client.connect()

    def snapshot_start() -> None:
        window["mp"] = counters["mp"]
        window["sp"] = counters["sp"]

    sim.schedule(warmup, snapshot_start)
    sim.run(until=warmup + duration)
    mp_bytes = counters["mp"] - window["mp"]
    sp_bytes = counters["sp"] - window["sp"]
    return FairnessResult(
        multipath_cc=multipath_cc,
        mp_goodput_bps=mp_bytes * 8.0 / duration,
        competitor_goodput_bps=sp_bytes * 8.0 / duration,
        duration=duration,
    )
