"""Tests for receiver-limited transfers (rate-limited app consumption)
and per-stream fairness of the round-robin stream scheduler."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection

from tests.helpers import run_transfer


class TestReceiverLimited:
    def test_flow_control_throttles_to_consume_rate(self):
        """A 10 Mbps link with a 2 Mbps reader finishes at reader speed."""
        size = 1_000_000
        cfg = QuicConfig(app_consume_rate_bps=2e6)
        result = run_transfer(
            "quic", [PathConfig(10, 20, 100)], file_size=size,
            quic_config=cfg, timeout=60.0,
        )
        assert result.ok
        expected = size * 8 / 2e6  # 4 seconds at reader speed
        assert result.transfer_time == pytest.approx(expected, rel=0.35)
        # Clearly slower than the network-limited case.
        network_limited = size * 8 / 10e6
        assert result.transfer_time > network_limited * 2

    def test_fast_reader_changes_nothing(self):
        size = 500_000
        slow = run_transfer(
            "quic", [PathConfig(10, 20, 100)], file_size=size,
            quic_config=QuicConfig(app_consume_rate_bps=100e6),
        )
        instant = run_transfer(
            "quic", [PathConfig(10, 20, 100)], file_size=size,
        )
        assert slow.transfer_time == pytest.approx(
            instant.transfer_time, rel=0.15
        )

    def test_receiver_limited_multipath(self):
        cfg = QuicConfig(app_consume_rate_bps=3e6)
        result = run_transfer(
            "mpquic",
            [PathConfig(10, 20, 100), PathConfig(10, 20, 100)],
            file_size=1_000_000, quic_config=cfg, timeout=60.0,
        )
        assert result.ok
        # ~3 Mbps despite 20 Mbps of aggregate capacity.
        assert result.transfer_time > 1_000_000 * 8 / 20e6 * 3


class TestStreamFairness:
    def test_concurrent_streams_finish_together(self):
        """Round-robin stream scheduling: two equal downloads started
        together complete at nearly the same time, instead of the first
        stream monopolising the connection."""
        sim = Simulator()
        topo = TwoPathTopology(sim, [PathConfig(10, 40, 80)], seed=1)
        client = QuicConnection(sim, topo.client, "client", QuicConfig())
        server = QuicConnection(sim, topo.server, "server", QuicConfig())
        finished = {}
        state = {}

        def on_server_data(sid, data, fin):
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"x" * 400_000, fin=True)

        server.on_stream_data = on_server_data

        def on_client_data(sid, data, fin):
            if fin:
                finished[sid] = sim.now

        client.on_stream_data = on_client_data

        def go():
            for _ in range(2):
                sid = client.open_stream()
                client.send_stream_data(sid, b"GET", fin=True)

        client.on_established = go
        client.connect()
        sim.run_until(lambda: len(finished) == 2, timeout=30.0)
        times = sorted(finished.values())
        # The two completions are within 25% of each other.
        assert times[1] - times[0] < times[1] * 0.25

    def test_interleaving_visible_in_progress(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, [PathConfig(10, 40, 80)], seed=1)
        client = QuicConnection(sim, topo.client, "client", QuicConfig())
        server = QuicConnection(sim, topo.server, "server", QuicConfig())
        progress = {}
        state = {}

        def on_server_data(sid, data, fin):
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"x" * 300_000, fin=True)

        server.on_stream_data = on_server_data

        def on_client_data(sid, data, fin):
            progress.setdefault(sid, 0)
            progress[sid] += len(data)

        client.on_stream_data = on_client_data

        def go():
            for _ in range(2):
                sid = client.open_stream()
                client.send_stream_data(sid, b"GET", fin=True)

        client.on_established = go
        client.connect()
        sim.run(until=0.35)  # mid-transfer
        # Both streams have made substantial progress concurrently.
        assert len(progress) == 2
        low, high = sorted(progress.values())
        assert low > high * 0.4
