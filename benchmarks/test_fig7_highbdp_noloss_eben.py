"""E5 / Fig. 7 — high-BDP-no-loss: aggregation benefit.

Paper shape: in high-BDP environments MPTCP's benefit collapses
(receive-window limits + bufferbloat + late second subflow) while
MPQUIC remains advantageous: EBen > 0 in 58% (MPQUIC) vs 20% (MPTCP).
"""

from repro.experiments.figures import fig7
from repro.experiments.metrics import fraction_greater_than, median

from benchmarks.common import BENCH_CONFIG, run_once


def _both(buckets):
    return buckets["best_first"] + buckets["worst_first"]


def test_fig7_highbdp_aggregation(benchmark):
    data = run_once(benchmark, lambda: fig7(BENCH_CONFIG))
    frac_q = fraction_greater_than(_both(data["mpquic_vs_quic"]), 0.0)
    frac_t = fraction_greater_than(_both(data["mptcp_vs_tcp"]), 0.0)
    assert frac_q >= frac_t
    assert median(_both(data["mpquic_vs_quic"])) >= median(_both(data["mptcp_vs_tcp"]))
