"""Tests for the expdesign command-line interface."""

import csv

import pytest

from repro.expdesign.__main__ import main


class TestExpdesignCli:
    def test_prints_table(self, capsys):
        assert main(["low-bdp-no-loss", "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "cap0_mbps" in out
        assert len(out.strip().splitlines()) == 4  # header + 3 rows

    def test_csv_export(self, tmp_path):
        path = tmp_path / "design.csv"
        assert main(["high-bdp-losses", "--count", "5", "--csv", str(path)]) == 0
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 6
        # Losses populated for the lossy class.
        losses = [float(r[4]) for r in rows[1:]]
        assert any(l > 0 for l in losses)

    def test_seed_changes_design(self, capsys):
        main(["low-bdp-no-loss", "--count", "3", "--seed", "1"])
        a = capsys.readouterr().out
        main(["low-bdp-no-loss", "--count", "3", "--seed", "2"])
        b = capsys.readouterr().out
        assert a != b

    def test_unknown_class_rejected(self):
        with pytest.raises(SystemExit):
            main(["medium-bdp"])
