"""E1 / Fig. 3 — GET <large>, low-BDP-no-loss: time-ratio CDFs.

Paper shape: single-path TCP and QUIC are equivalent (ratio CDF tight
around 1), while MPQUIC outperforms MPTCP in ~89% of runs.
"""

from repro.experiments.figures import fig3
from repro.experiments.metrics import fraction_greater_than, median

from benchmarks.common import BENCH_CONFIG, run_once


def test_fig3_time_ratio_cdfs(benchmark):
    series = run_once(benchmark, lambda: fig3(BENCH_CONFIG))
    tcp_quic = series["tcp/quic"]
    mptcp_mpquic = series["mptcp/mpquic"]
    # Single path: both use CUBIC; ratios cluster near 1.
    assert 0.8 <= median(tcp_quic) <= 1.6
    # Multipath: MPQUIC faster than MPTCP in most runs (paper: 89%).
    assert fraction_greater_than(mptcp_mpquic, 1.0) >= 0.5
    assert median(mptcp_mpquic) > 1.0
