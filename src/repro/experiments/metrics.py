"""Evaluation metrics.

The central one is the paper's *experimental aggregation benefit*
(§4.1, after Kaspar 2012 / Paasch 2013): instead of comparing against
nominal link capacities, it compares the multipath goodput with the
goodputs single-path protocols actually achieved on each path::

              Gm - Gmax_s
    EBen =  ----------------      if Gm >= Gmax_s
            (sum_i G_i) - Gmax_s

            Gm - Gmax_s
         =  -----------           otherwise
               Gmax_s

0 means "no better than the best single path", 1 means "the sum of the
paths", negative values mean multipath *hurt*.

The workload harness (:mod:`repro.experiments.workload`) adds two more:
:func:`jain_index` for fairness over per-flow goodputs, and
:class:`QuantileSketch`, a bounded-memory streaming quantile summary
(Greenwald-Khanna) for tail flow-completion times — p999 over tens of
thousands of flows without keeping them all.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, List, Sequence, Tuple


def experimental_aggregation_benefit(
    multipath_goodput: float, single_path_goodputs: Sequence[float]
) -> float:
    """The paper's EBen(C) metric (see module docstring)."""
    if not single_path_goodputs:
        raise ValueError("at least one single-path goodput is required")
    g_max = max(single_path_goodputs)
    total = sum(single_path_goodputs)
    if g_max <= 0:
        raise ValueError("single-path goodputs must be positive")
    if multipath_goodput >= g_max:
        denominator = total - g_max
        if denominator <= 0:
            # Degenerate single-path case: no aggregation possible.
            return 0.0
        return (multipath_goodput - g_max) / denominator
    return (multipath_goodput - g_max) / g_max


def cdf_points(values: Iterable[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as sorted ``(value, P[X <= value])`` pairs."""
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def fraction_greater_than(values: Iterable[float], threshold: float) -> float:
    """Share of values strictly above ``threshold``."""
    data = list(values)
    if not data:
        return 0.0
    return sum(1 for v in data if v > threshold) / len(data)


def median(values: Iterable[float]) -> float:
    """Median (interpolating midpoint for even counts)."""
    data = sorted(values)
    if not data:
        raise ValueError("median of empty sequence")
    n = len(data)
    mid = n // 2
    if n % 2 == 1:
        return data[mid]
    return (data[mid - 1] + data[mid]) / 2.0


def jain_index(values: Iterable[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 when every flow gets the same allocation, ``1/n`` when one flow
    takes everything.  Undefined (raises) on an empty sequence; a
    sequence of all-zero allocations counts as perfectly fair (every
    flow got the same nothing).
    """
    total = 0.0
    total_sq = 0.0
    n = 0
    for v in values:
        total += v
        total_sq += v * v
        n += 1
    if n == 0:
        raise ValueError("jain_index of empty sequence")
    if total_sq <= 0.0:
        return 1.0
    return (total * total) / (n * total_sq)


class StreamingJain:
    """O(1)-state Jain fairness accumulator.

    Folds allocations one at a time (the streaming-aggregation twin of
    :func:`jain_index`): only the count, sum and sum of squares are
    kept, so 10k+-cell sweeps aggregate fairness without materialising
    the allocation vector.  ``merge`` combines two accumulators — the
    distributed coordinator folds per-worker partials with it.
    """

    __slots__ = ("n", "total", "total_sq")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.total_sq = 0.0

    def add(self, value: float) -> None:
        self.n += 1
        self.total += value
        self.total_sq += value * value

    def merge(self, other: "StreamingJain") -> None:
        self.n += other.n
        self.total += other.total
        self.total_sq += other.total_sq

    def value(self) -> float:
        """Jain's index over everything folded so far (1.0 when empty)."""
        if self.n == 0 or self.total_sq <= 0.0:
            return 1.0
        return (self.total * self.total) / (self.n * self.total_sq)


class QuantileSketch:
    """Bounded-memory streaming quantiles (Greenwald-Khanna, GK01).

    Maintains a sorted summary of ``[value, g, delta]`` entries: ``g``
    is the gap in minimum rank to the previous entry and ``delta`` the
    extra rank uncertainty, with the GK invariant
    ``g + delta <= 2 * eps * n`` maintained by compression.  Any
    quantile is answered within ``~eps * n`` rank error from O((1/eps)
    * log(eps * n)) entries — a few hundred for millions of inserts at
    the default ``eps`` — which is what lets the workload harness
    report p999 FCT over arbitrarily many flows without storing them.

    Inserts are buffered and merged in sorted batches (the classic
    practical variant), so amortised insert cost is the buffer sort
    plus a linear merge per flush.  Queries interpolate between the
    entries' midpoint rank estimates ``rmin + delta/2``.  Because GK
    rank error translates to huge *value* error in a heavy tail (the
    gap between p999 and the maximum can be orders of magnitude), the
    sketch also keeps the largest :data:`TOP_K` observations exactly
    and answers extreme-tail queries (and everything, while ``n <=
    TOP_K``) from that sidecar — still O(1) memory.
    """

    #: Rank-error bound.  0.001 keeps p999 meaningful at 10k+ samples
    #: while the summary stays a few hundred entries.
    DEFAULT_EPS = 0.001

    #: Exact top-of-distribution sidecar size: tail quantiles whose
    #: rank falls within the largest TOP_K observations are exact (for
    #: p999 that covers every run below ~256k flows).
    TOP_K = 256

    __slots__ = ("eps", "n", "_entries", "_buffer", "_buffer_cap", "_top")

    def __init__(self, eps: float = DEFAULT_EPS) -> None:
        if not 0.0 < eps < 0.5:
            raise ValueError("eps must be in (0, 0.5)")
        self.eps = eps
        self.n = 0
        #: Sorted summary entries ``[value, g, delta]``.
        self._entries: List[List[float]] = []
        self._buffer: List[float] = []
        self._buffer_cap = max(16, int(1.0 / (2.0 * eps)))
        #: Min-heap of the largest TOP_K values seen.
        self._top: List[float] = []

    def __len__(self) -> int:
        """Stored summary entries (memory observability, not ``n``)."""
        return len(self._entries) + len(self._buffer) + len(self._top)

    def insert(self, value: float) -> None:
        self._buffer.append(value)
        self.n += 1
        if len(self._top) < self.TOP_K:
            heapq.heappush(self._top, value)
        elif value > self._top[0]:
            heapq.heapreplace(self._top, value)
        if len(self._buffer) >= self._buffer_cap:
            self._flush()

    def _flush(self) -> None:
        if not self._buffer:
            return
        incoming = sorted(self._buffer)
        self._buffer = []
        delta_cap = max(0, math.floor(2.0 * self.eps * self.n) - 1)
        merged: List[List[float]] = []
        entries = self._entries
        i = j = 0
        while i < len(entries) or j < len(incoming):
            if j >= len(incoming) or (
                i < len(entries) and entries[i][0] <= incoming[j]
            ):
                merged.append(entries[i])
                i += 1
            else:
                v = incoming[j]
                j += 1
                # New tuples carry g=1; interior ones get the delta
                # allowance, the observed extremes stay exact.
                if not merged or (i >= len(entries) and j >= len(incoming)):
                    delta = 0
                else:
                    delta = delta_cap
                merged.append([v, 1, delta])
        self._entries = merged
        self._compress()

    def _compress(self) -> None:
        entries = self._entries
        if len(entries) < 3:
            return
        threshold = math.floor(2.0 * self.eps * self.n)
        # Merge right-to-left so g accumulates into the survivor while
        # the band invariant g_i + g_{i+1} + delta_{i+1} <= threshold
        # holds; the first and last entries are never merged away.
        out = [entries[-1]]
        for k in range(len(entries) - 2, 0, -1):
            cur = entries[k]
            nxt = out[-1]
            if cur[1] + nxt[1] + nxt[2] <= threshold:
                nxt[1] += cur[1]
            else:
                out.append(cur)
        out.append(entries[0])
        out.reverse()
        self._entries = out

    def query(self, q: float) -> float:
        """The value at quantile ``q`` (within ``~eps*n`` rank error)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.n == 0:
            raise ValueError("query on empty sketch")
        self._flush()
        target = 1.0 + q * (self.n - 1)
        # Exact answer from the top-K sidecar when the target rank
        # falls inside it (always, while n <= TOP_K).
        floor_rank = self.n - len(self._top)
        if target >= floor_rank + 1:
            top = sorted(self._top)
            pos = target - floor_rank  # 1-based within the sidecar
            lo = int(pos) - 1
            hi = min(lo + 1, len(top) - 1)
            frac = pos - int(pos)
            return top[lo] + frac * (top[hi] - top[lo])
        entries = self._entries
        target = 1.0 + q * (self.n - 1)
        prev_est = None
        prev_value = entries[0][0]
        rmin = 0.0
        for value, g, delta in entries:
            rmin += g
            est = rmin + delta / 2.0
            if prev_est is not None and est < prev_est:
                est = prev_est  # keep the estimate monotone
            if est >= target:
                if prev_est is None or est == prev_est:
                    return value
                frac = (target - prev_est) / (est - prev_est)
                return prev_value + frac * (value - prev_value)
            prev_est, prev_value = est, value
        return entries[-1][0]

    # Convenience accessors for the workload harness's headline stats.

    def p50(self) -> float:
        return self.query(0.50)

    def p99(self) -> float:
        return self.query(0.99)

    def p999(self) -> float:
        return self.query(0.999)

    def cdf_points(self, points: int = 50) -> List[Tuple[float, float]]:
        """``(value, cumulative_fraction)`` pairs on an even quantile grid.

        The streamed stand-in for :func:`cdf_points` over a full result
        matrix: figure harnesses plot CDFs straight from the sketch, so
        a 10k-cell sweep never materialises its values.
        """
        if self.n == 0:
            return []
        if points < 2:
            raise ValueError("need at least 2 CDF points")
        return [
            (self.query(i / (points - 1)), i / (points - 1))
            for i in range(points)
        ]


def quartiles(values: Iterable[float]) -> Tuple[float, float, float]:
    """(Q1, median, Q3) with linear interpolation."""
    data = sorted(values)
    if not data:
        raise ValueError("quartiles of empty sequence")

    def _q(p: float) -> float:
        idx = p * (len(data) - 1)
        lo = int(idx)
        hi = min(lo + 1, len(data) - 1)
        frac = idx - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    return _q(0.25), _q(0.5), _q(0.75)
