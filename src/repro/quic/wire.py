"""Byte-level encoding of QUIC packets and frames.

The simulator itself passes packet *objects* between hosts and accounts
bandwidth through ``wire_size()``; this module provides a real codec so
the size accounting is honest (``len(encode(p)) == p.wire_size``) and
the formats are testable, including the MPQUIC public-header extension:
an unencrypted **Path ID** next to the packet number, which is what
exposes paths to the network instead of relying on implicit
packet-number ranges (paper §3, *Path Identification*).
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, List, Tuple

from repro.obs import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.quic.frames import Frame
    from repro.quic.packet import Packet

# Frame type bytes.
TYPE_STREAM = 0x01
TYPE_ACK = 0x02
TYPE_WINDOW_UPDATE = 0x03
TYPE_PING = 0x04
TYPE_HANDSHAKE = 0x05
TYPE_CONNECTION_CLOSE = 0x06
# MPQUIC extension frames.
TYPE_ADD_ADDRESS = 0x10
TYPE_PATHS = 0x11
TYPE_PATH_CHALLENGE = 0x12
TYPE_PATH_RESPONSE = 0x13

#: Public header flag: packet carries an explicit Path ID byte.
FLAG_MULTIPATH = 0x40

#: Size of the connection ID on the wire.
CID_SIZE = 8

#: Packet numbers are encoded on 4 bytes (ample for our simulations).
PN_SIZE = 4


class WireFormatError(ValueError):
    """Raised when a buffer cannot be parsed as a packet or frame.

    Truncated, corrupted or otherwise malformed input must surface as
    this error — never as a raw ``struct.error`` / ``IndexError`` and
    never as a silently mis-parsed frame.
    """


def _need(buf: bytes, pos: int, count: int, what: str) -> None:
    """Require ``count`` bytes at ``pos`` or raise :class:`WireFormatError`."""
    if pos < 0 or pos + count > len(buf):
        raise WireFormatError(
            f"truncated {what}: need {count} byte(s) at offset {pos}, "
            f"buffer holds {len(buf)}"
        )


def varint_size(value: int) -> int:
    """Size of a QUIC-style variable-length integer."""
    if value < 0:
        raise ValueError("varints are unsigned")
    if value < 1 << 6:
        return 1
    if value < 1 << 14:
        return 2
    if value < 1 << 30:
        return 4
    if value < 1 << 62:
        return 8
    raise ValueError("varint out of range")


def encode_varint(value: int) -> bytes:
    """Encode an unsigned integer as a QUIC varint."""
    out = bytearray()
    encode_varint_into(out, value)
    return bytes(out)


def encode_varint_into(out: bytearray, value: int) -> None:
    """Append the QUIC varint encoding of ``value`` to ``out``.

    The append-into form is the one the packet encoder uses: one
    growing ``bytearray`` per packet instead of a ``bytes`` object per
    field glued together with ``+=``.
    """
    size = varint_size(value)
    if size == 1:
        out.append(value)
    elif size == 2:
        out += struct.pack(">H", value | 0x4000)
    elif size == 4:
        out += struct.pack(">I", value | 0x80000000)
    else:
        out += struct.pack(">Q", value | 0xC000000000000000)


def decode_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Decode a varint at ``pos``; returns ``(value, new_pos)``.

    Raises :class:`WireFormatError` when the buffer ends before the
    length the prefix announces.
    """
    _need(buf, pos, 1, "varint")
    first = buf[pos]
    prefix = first >> 6
    if prefix == 0:
        return first, pos + 1
    if prefix == 1:
        _need(buf, pos, 2, "varint")
        return struct.unpack_from(">H", buf, pos)[0] & 0x3FFF, pos + 2
    if prefix == 2:
        _need(buf, pos, 4, "varint")
        return struct.unpack_from(">I", buf, pos)[0] & 0x3FFFFFFF, pos + 4
    _need(buf, pos, 8, "varint")
    return struct.unpack_from(">Q", buf, pos)[0] & 0x3FFFFFFFFFFFFFFF, pos + 8


def public_header_size(multipath: bool) -> int:
    """Flags + CID + packet number (+ path ID under multipath)."""
    return 1 + CID_SIZE + PN_SIZE + (1 if multipath else 0)


def encode_packet(packet: "Packet") -> bytes:
    """Serialize a packet: public header followed by its frames.

    All fields and frames append into one ``bytearray`` — no
    intermediate per-frame ``bytes`` objects.
    """
    flags = FLAG_MULTIPATH if packet.multipath else 0x00
    out = bytearray()
    out.append(flags)
    out += struct.pack(">Q", packet.connection_id)
    if packet.multipath:
        out.append(packet.path_id)
    out += struct.pack(">I", packet.packet_number)
    for frame in packet.frames:
        encode_frame_into(out, frame)
    if _metrics.METRICS:
        _metrics.REGISTRY.inc("wire.packets_encoded")
        _metrics.REGISTRY.observe("wire.encoded_packet_bytes", len(out))
    return bytes(out)


def decode_packet(buf: bytes) -> "Packet":
    """Parse bytes produced by :func:`encode_packet`.

    Raises :class:`WireFormatError` on truncated or malformed input.
    """
    from repro.quic.packet import Packet

    pos = 0
    _need(buf, pos, 1, "public header flags")
    flags = buf[pos]
    pos += 1
    multipath = bool(flags & FLAG_MULTIPATH)
    _need(buf, pos, 8, "connection ID")
    connection_id = struct.unpack_from(">Q", buf, pos)[0]
    pos += 8
    path_id = 0
    if multipath:
        _need(buf, pos, 1, "path ID")
        path_id = buf[pos]
        pos += 1
    _need(buf, pos, 4, "packet number")
    packet_number = struct.unpack_from(">I", buf, pos)[0]
    pos += 4
    frames: List["Frame"] = []
    while pos < len(buf):
        frame, pos = decode_frame(buf, pos)
        frames.append(frame)
    if _metrics.METRICS:
        _metrics.REGISTRY.inc("wire.packets_decoded")
    return Packet(
        path_id=path_id,
        packet_number=packet_number,
        frames=tuple(frames),
        connection_id=connection_id,
        multipath=multipath,
    )


def encode_frame(frame: "Frame") -> bytes:
    """Serialize a single frame."""
    out = bytearray()
    encode_frame_into(out, frame)
    return bytes(out)


def encode_frame_into(out: bytearray, frame: "Frame") -> None:
    """Append the wire encoding of ``frame`` to ``out``."""
    from repro.quic import frames as f

    if isinstance(frame, f.StreamFrame):
        out.append(TYPE_STREAM | (0x80 if frame.fin else 0x00))
        encode_varint_into(out, frame.stream_id)
        encode_varint_into(out, frame.offset)
        out += struct.pack(">H", len(frame.data))
        out += frame.data
        return
    if isinstance(frame, f.AckFrame):
        out.append(TYPE_ACK)
        out.append(frame.path_id)
        encode_varint_into(out, frame.largest_acked)
        # round(), not int(): an ack delay that is exactly a multiple of
        # 8 us must survive the encode/decode round trip even when the
        # float product lands a hair below the integer.
        out += struct.pack(">H", min(0xFFFF, round(frame.ack_delay * 1e6) >> 3))
        out += struct.pack(">H", len(frame.ranges))
        for start, stop in frame.ranges:
            encode_varint_into(out, stop - start)
            encode_varint_into(out, start)
        return
    if isinstance(frame, f.WindowUpdateFrame):
        out.append(TYPE_WINDOW_UPDATE)
        encode_varint_into(out, frame.stream_id)
        out += struct.pack(">Q", frame.byte_offset)
        return
    if isinstance(frame, f.PingFrame):
        out.append(TYPE_PING)
        return
    if isinstance(frame, f.HandshakeFrame):
        kind = 0 if frame.kind == "CHLO" else 1
        out.append(TYPE_HANDSHAKE)
        out += struct.pack(">BB", kind, 0)
        out += b"\x00" * frame.length
        return
    if isinstance(frame, f.ConnectionCloseFrame):
        reason = frame.reason.encode()
        out.append(TYPE_CONNECTION_CLOSE)
        out += struct.pack(">IH", frame.error_code, len(reason))
        out += reason
        return
    if isinstance(frame, f.AddAddressFrame):
        addr = frame.address.encode()
        out.append(TYPE_ADD_ADDRESS)
        out.append(len(addr))
        out += addr
        return
    if isinstance(frame, f.PathsFrame):
        out.append(TYPE_PATHS)
        out.append(len(frame.active))
        for info in frame.active:
            out.append(info.path_id)
            out += struct.pack(">I", info.rtt_us)
        out.append(len(frame.failed))
        out += bytes(frame.failed)
        return
    if isinstance(frame, f.PathChallengeFrame):
        out.append(TYPE_PATH_CHALLENGE)
        out += frame.data
        return
    if isinstance(frame, f.PathResponseFrame):
        out.append(TYPE_PATH_RESPONSE)
        out += frame.data
        return
    raise TypeError(f"cannot encode frame {frame!r}")


def decode_frame(buf: bytes, pos: int) -> Tuple["Frame", int]:
    """Parse one frame at ``pos``; returns ``(frame, new_pos)``.

    Raises :class:`WireFormatError` on truncation, bad text encodings
    and unknown frame types.
    """
    from repro.quic import frames as f

    _need(buf, pos, 1, "frame type")
    type_byte = buf[pos]
    base_type = type_byte & 0x7F
    pos += 1
    if base_type == TYPE_STREAM:
        fin = bool(type_byte & 0x80)
        stream_id, pos = decode_varint(buf, pos)
        offset, pos = decode_varint(buf, pos)
        _need(buf, pos, 2, "stream frame length")
        length = struct.unpack_from(">H", buf, pos)[0]
        pos += 2
        _need(buf, pos, length, "stream frame data")
        data = buf[pos:pos + length]
        pos += length
        return f.StreamFrame(stream_id, offset, data, fin), pos
    if base_type == TYPE_ACK:
        _need(buf, pos, 1, "ack path ID")
        path_id = buf[pos]
        pos += 1
        largest, pos = decode_varint(buf, pos)
        _need(buf, pos, 4, "ack delay and range count")
        raw_delay = struct.unpack_from(">H", buf, pos)[0]
        pos += 2
        count = struct.unpack_from(">H", buf, pos)[0]
        pos += 2
        ranges = []
        for _ in range(count):
            span, pos = decode_varint(buf, pos)
            start, pos = decode_varint(buf, pos)
            ranges.append((start, start + span))
        return f.AckFrame(path_id, largest, (raw_delay << 3) / 1e6, tuple(ranges)), pos
    if base_type == TYPE_WINDOW_UPDATE:
        stream_id, pos = decode_varint(buf, pos)
        _need(buf, pos, 8, "window update offset")
        offset = struct.unpack_from(">Q", buf, pos)[0]
        pos += 8
        return f.WindowUpdateFrame(stream_id, offset), pos
    if base_type == TYPE_PING:
        return f.PingFrame(), pos
    if base_type == TYPE_HANDSHAKE:
        _need(buf, pos, 2, "handshake header")
        kind_code, _reserved = struct.unpack_from(">BB", buf, pos)
        pos += 2
        # Skip the opaque crypto payload: everything until the buffer end
        # would be wrong in general, so handshake frames encode their
        # length implicitly via zero padding; count contiguous zeros.
        length = 0
        while pos + length < len(buf) and buf[pos + length] == 0:
            length += 1
        pos += length
        return f.HandshakeFrame("CHLO" if kind_code == 0 else "SHLO", length), pos
    if base_type == TYPE_CONNECTION_CLOSE:
        _need(buf, pos, 6, "connection close header")
        error_code, reason_len = struct.unpack_from(">IH", buf, pos)
        pos += 6
        _need(buf, pos, reason_len, "connection close reason")
        try:
            reason = buf[pos:pos + reason_len].decode()
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"bad close reason encoding: {exc}") from exc
        pos += reason_len
        return f.ConnectionCloseFrame(error_code, reason), pos
    if base_type == TYPE_ADD_ADDRESS:
        _need(buf, pos, 1, "address length")
        length = buf[pos]
        pos += 1
        _need(buf, pos, length, "address")
        try:
            address = buf[pos:pos + length].decode()
        except UnicodeDecodeError as exc:
            raise WireFormatError(f"bad address encoding: {exc}") from exc
        pos += length
        return f.AddAddressFrame(address), pos
    if base_type == TYPE_PATHS:
        _need(buf, pos, 1, "paths frame active count")
        n_active = buf[pos]
        pos += 1
        active = []
        for _ in range(n_active):
            _need(buf, pos, 5, "paths frame active entry")
            path_id = buf[pos]
            rtt_us = struct.unpack_from(">I", buf, pos + 1)[0]
            pos += 5
            active.append(f.PathInfo(path_id, rtt_us))
        _need(buf, pos, 1, "paths frame failed count")
        n_failed = buf[pos]
        pos += 1
        _need(buf, pos, n_failed, "paths frame failed list")
        failed = tuple(buf[pos:pos + n_failed])
        pos += n_failed
        return f.PathsFrame(tuple(active), failed), pos
    if base_type == TYPE_PATH_CHALLENGE:
        _need(buf, pos, f.PATH_TOKEN_SIZE, "path challenge token")
        data = buf[pos:pos + f.PATH_TOKEN_SIZE]
        pos += f.PATH_TOKEN_SIZE
        return f.PathChallengeFrame(data), pos
    if base_type == TYPE_PATH_RESPONSE:
        _need(buf, pos, f.PATH_TOKEN_SIZE, "path response token")
        data = buf[pos:pos + f.PATH_TOKEN_SIZE]
        pos += f.PATH_TOKEN_SIZE
        return f.PathResponseFrame(data), pos
    raise WireFormatError(f"unknown frame type 0x{type_byte:02x}")
