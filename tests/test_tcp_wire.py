"""Round-trip and size-honesty tests for the TCP segment codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tcp.segment import Segment
from repro.tcp.wire import decode_segment, encode_segment

EXAMPLES = [
    Segment(seq=0, ack=0, syn=True, window_edge=49152),
    Segment(seq=0, ack=0, syn=True, data=b"CHLO" * 70, window_edge=49152),
    Segment(seq=1, ack=1, data=b"x" * 1400, window_edge=2**33),
    Segment(seq=10**6, ack=5, data=b"", fin=True, window_edge=100),
    Segment(seq=1, ack=1, sack_blocks=((100, 200), (300, 400), (500, 600))),
    Segment(seq=1, ack=1, data=b"d" * 100, dsn=12345, data_ack=999,
            data_fin=True),
    Segment(seq=1, ack=1, data=b"d", dsn=0, retransmission=True),
    Segment(seq=1, ack=1, data_ack=0),
]


class TestSegmentCodec:
    @pytest.mark.parametrize("segment", EXAMPLES, ids=range(len(EXAMPLES)))
    def test_roundtrip(self, segment):
        decoded = decode_segment(encode_segment(segment))
        assert decoded == segment

    @pytest.mark.parametrize("segment", EXAMPLES, ids=range(len(EXAMPLES)))
    def test_wire_size_matches_encoding(self, segment):
        assert segment.wire_size == len(encode_segment(segment))

    @given(
        seq=st.integers(0, 2**31),
        ack=st.integers(0, 2**31),
        data=st.binary(max_size=1400),
        syn=st.booleans(),
        fin=st.booleans(),
        window_edge=st.integers(0, 2**40),
        n_sack=st.integers(0, 3),
        dsn=st.one_of(st.none(), st.integers(0, 2**40)),
        data_ack=st.one_of(st.none(), st.integers(0, 2**40)),
    )
    @settings(max_examples=150)
    def test_roundtrip_property(
        self, seq, ack, data, syn, fin, window_edge, n_sack, dsn, data_ack
    ):
        sack = tuple((i * 100, i * 100 + 50) for i in range(n_sack))
        segment = Segment(
            seq=seq, ack=ack, data=data, syn=syn, fin=fin,
            window_edge=window_edge, sack_blocks=sack,
            dsn=dsn, data_ack=data_ack,
        )
        encoded = encode_segment(segment)
        assert decode_segment(encoded) == segment
        assert segment.wire_size == len(encoded)
