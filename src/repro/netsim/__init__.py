"""Discrete-event network simulator (Mininet substitute).

The paper evaluates (MP)QUIC and (MP)TCP over Mininet links configured
with a rate, a propagation delay, a drop-tail queue sized from a queuing
delay, and Bernoulli random loss.  This package reproduces exactly those
link semantics inside a deterministic event-driven simulator.
"""

from repro.netsim.bottleneck import Router, SharedBottleneckTopology
from repro.netsim.engine import Simulator, Timer
from repro.netsim.link import Link, LinkStats
from repro.netsim.node import Datagram, Host, Interface
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.netsim.trace import PacketTrace, TraceRecord

__all__ = [
    "Simulator",
    "Timer",
    "Link",
    "LinkStats",
    "Datagram",
    "Host",
    "Interface",
    "PathConfig",
    "TwoPathTopology",
    "Router",
    "SharedBottleneckTopology",
    "PacketTrace",
    "TraceRecord",
]
