"""MPTCP subflow schedulers.

The Linux default scheduler prefers the established subflow with the
lowest smoothed RTT among those with congestion-window space.  Its RTT
estimates come from Karn-sampled, delayed-ACK-inflated measurements, so
under load it can mis-prefer the slow path — one of the behaviours the
paper observes causing head-of-line blocking (§4.1).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.tcp.flow import TcpFlow


class SubflowScheduler:
    """Base class: choose the subflow for the next data chunk."""

    name = "abstract"

    def select(self, subflows: List["TcpFlow"]) -> Optional["TcpFlow"]:
        raise NotImplementedError

    @staticmethod
    def usable(subflows: List["TcpFlow"]) -> List["TcpFlow"]:
        """Established subflows with cwnd room, skipping potentially
        failed ones unless every subflow is in that state."""
        ready = [f for f in subflows if f.established and f.can_take_data()]
        good = [f for f in ready if not f.potentially_failed]
        return good or ready


class LowestRttSubflowScheduler(SubflowScheduler):
    """Linux MPTCP's default scheduler."""

    name = "lowest_rtt"

    def select(self, subflows: List["TcpFlow"]) -> Optional["TcpFlow"]:
        candidates = self.usable(subflows)
        if not candidates:
            return None
        with_rtt = [f for f in candidates if f.rtt.has_sample]
        if with_rtt:
            return min(with_rtt, key=lambda f: (f.rtt.smoothed, f.interface_index))
        return candidates[0]


class RoundRobinSubflowScheduler(SubflowScheduler):
    """Round-robin over usable subflows (mptcp's rr module)."""

    name = "round_robin"

    def __init__(self) -> None:
        self._last = -1

    def select(self, subflows: List["TcpFlow"]) -> Optional["TcpFlow"]:
        candidates = sorted(self.usable(subflows), key=lambda f: f.interface_index)
        if not candidates:
            return None
        for flow in candidates:
            if flow.interface_index > self._last:
                self._last = flow.interface_index
                return flow
        self._last = candidates[0].interface_index
        return candidates[0]


class BackupSubflowScheduler(SubflowScheduler):
    """Primary/backup mode (how iOS deploys MPTCP, paper §1).

    All data rides the primary (initial) subflow; the backup is used
    only while the primary is potentially failed — pure handover
    insurance with no aggregation.
    """

    name = "backup"

    def __init__(self, primary_interface: int = 0) -> None:
        self.primary_interface = primary_interface

    def select(self, subflows: List["TcpFlow"]) -> Optional["TcpFlow"]:
        primary = next(
            (
                f for f in subflows
                if f.interface_index == self.primary_interface and f.established
            ),
            None,
        )
        if primary is not None and not primary.potentially_failed:
            # A congestion-limited primary means *wait*, not fail over.
            return primary if primary.can_take_data() else None
        ready = [
            f for f in subflows
            if f.established and f.can_take_data() and f is not primary
        ]
        backups = [f for f in ready if not f.potentially_failed]
        if backups:
            return backups[0]
        return ready[0] if ready else None


def make_subflow_scheduler(name: str, primary_interface: int = 0) -> SubflowScheduler:
    """Factory by name ('lowest_rtt', 'round_robin', 'backup')."""
    name = name.lower()
    if name == "lowest_rtt":
        return LowestRttSubflowScheduler()
    if name == "round_robin":
        return RoundRobinSubflowScheduler()
    if name == "backup":
        return BackupSubflowScheduler(primary_interface)
    raise ValueError(f"unknown MPTCP scheduler: {name}")
