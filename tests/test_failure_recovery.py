"""End-to-end failure recovery: the path liveness state machine,
probe-driven recovery/abandonment, cross-path reinjection and the
connection lifetime limits.

Three layers under test:

* unit — liveness transitions follow the legal table (hypothesis walk),
  recovery demands *evidence* (a fresh ACK or a matching PATH_RESPONSE,
  never mere packet receipt), probe backoff stays inside its bounds;
* sanitizer — every new invariant actually trips on a violation;
* e2e — a permanent single-path failure completes on the surviving
  path with reinjected bytes and an ABANDONED path in the trace, while
  a total blackhole terminates with a clean idle-timeout error.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.connection import MultipathQuicConnection
from repro.netsim.engine import Simulator
from repro.netsim.faults import Blackhole, FaultEvent, FaultTimeline
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.obs import Tracer
from repro.quic.config import QuicConfig
from repro.quic.connection import (
    LEGAL_LIVENESS_TRANSITIONS,
    HandshakeTimeoutError,
    IdleTimeoutError,
    NoViablePathError,
    PathLiveness,
    QuicConnection,
)
from repro.quic.frames import PathResponseFrame, PingFrame
from repro.util import sanitize
from repro.util.sanitize import SanitizerError

from tests.helpers import TWO_CLEAN_PATHS, failure_timeline, run_transfer


def mp_pair(config=None, trace=None, seed=1):
    """An established two-path MPQUIC pair, 1 simulated second in."""
    sim = Simulator()
    topo = TwoPathTopology(sim, list(TWO_CLEAN_PATHS), seed=seed)
    client = MultipathQuicConnection(sim, topo.client, "client", config, trace)
    server = MultipathQuicConnection(sim, topo.server, "server", config, trace)
    client.connect()
    sim.run(until=1.0)
    assert client.established and server.established
    assert 1 in client.paths  # path manager opened the second path
    return sim, topo, client, server


def total_blackhole(time: float) -> FaultTimeline:
    """Every path silently eats datagrams from ``time`` on."""
    return FaultTimeline(
        (FaultEvent(time, 0, Blackhole()), FaultEvent(time, 1, Blackhole()))
    )


# ----------------------------------------------------------------------
# The transition table
# ----------------------------------------------------------------------

class TestLivenessTable:
    def test_abandoned_is_terminal(self):
        assert LEGAL_LIVENESS_TRANSITIONS[PathLiveness.ABANDONED] == frozenset()

    def test_active_only_degrades_to_potentially_failed(self):
        assert LEGAL_LIVENESS_TRANSITIONS[PathLiveness.ACTIVE] == frozenset(
            {PathLiveness.POTENTIALLY_FAILED}
        )

    def test_every_state_has_an_entry(self):
        assert set(LEGAL_LIVENESS_TRANSITIONS) == set(PathLiveness)

    def test_recovery_possible_from_suspect_states_only(self):
        recoverable = {
            s for s, targets in LEGAL_LIVENESS_TRANSITIONS.items()
            if PathLiveness.ACTIVE in targets
        }
        assert recoverable == {
            PathLiveness.POTENTIALLY_FAILED, PathLiveness.PROBING
        }

    @given(
        st.lists(
            st.sampled_from(list(PathLiveness)), min_size=1, max_size=8
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_only_table_transitions_are_accepted(self, targets):
        """Property: _set_liveness accepts exactly the table's edges;
        an illegal attempt trips the sanitizer and leaves state intact."""
        sim = Simulator()
        topo = TwoPathTopology(sim, [PathConfig(10, 40, 50)], seed=1)
        conn = QuicConnection(sim, topo.client, "client", QuicConfig())
        conn.connect()
        path = conn.paths[0]
        with sanitize.enabled():
            for target in targets:
                before = path.liveness
                if target in LEGAL_LIVENESS_TRANSITIONS[before]:
                    conn._set_liveness(path, target)
                    assert path.liveness is target
                else:
                    with pytest.raises(SanitizerError):
                        conn._set_liveness(path, target)
                    assert path.liveness is before


# ----------------------------------------------------------------------
# Recovery requires evidence (the satellite bug fix)
# ----------------------------------------------------------------------

#: Probes pushed out far enough that they cannot rescue the path first.
SLOW_PROBES = dict(probe_interval_initial=5.0, probe_interval_max=5.0)


class TestRecoveryEvidence:
    def test_packet_receipt_alone_does_not_recover(self):
        """The old blanket clear-on-receive is gone: a PING landing on a
        potentially-failed path proves the *peer's* direction works, not
        that our own packets get through."""
        sim, topo, client, server = mp_pair(QuicConfig(**SLOW_PROBES))
        path = client.paths[1]
        client._mark_potentially_failed(path, source="rto")
        client._send_pending()  # flush the PATHS signal, as _on_rto does
        server._queue_control(1, PingFrame())
        server._send_pending()
        sim.run(until=sim.now + 1.0)  # PING delivered, no probe fired yet
        assert path.liveness is PathLiveness.POTENTIALLY_FAILED

    def test_probe_response_recovers(self):
        trace = Tracer()
        sim, topo, client, server = mp_pair(
            QuicConfig(**SLOW_PROBES), trace=trace
        )
        path = client.paths[1]
        client._mark_potentially_failed(path, source="rto")
        client._send_pending()  # flush the PATHS signal, as _on_rto does
        sim.run(until=sim.now + 7.0)  # probe at +5s round-trips
        assert path.liveness is PathLiveness.ACTIVE
        recovered = [
            ev for ev in trace.events_of("path", "recovered")
            if ev.host == "client" and ev.path_id == 1
        ]
        assert recovered and recovered[0].data["reason"] == "probe"

    def test_stale_probe_response_is_ignored(self):
        sim, topo, client, server = mp_pair(QuicConfig(**SLOW_PROBES))
        path = client.paths[1]
        client._mark_potentially_failed(path, source="rto")
        client._on_path_response(PathResponseFrame(b"\x00" * 8), path)
        assert path.liveness is PathLiveness.POTENTIALLY_FAILED

    def test_fresh_ack_recovers(self):
        """An ACK of new data sent on the suspect path is the other
        legitimate recovery signal (here: a WINDOW_UPDATE's ACK)."""
        trace = Tracer()
        sim, topo, client, server = mp_pair(
            QuicConfig(**SLOW_PROBES), trace=trace
        )
        path = client.paths[1]
        client._mark_potentially_failed(path, source="rto")
        client._queue_control(1, PingFrame())  # eliciting, rides path 1
        client._send_pending()
        sim.run(until=sim.now + 1.0)
        assert path.liveness is PathLiveness.ACTIVE
        recovered = [
            ev for ev in trace.events_of("path", "recovered")
            if ev.host == "client" and ev.path_id == 1
        ]
        assert recovered and recovered[0].data["reason"] == "ack"


# ----------------------------------------------------------------------
# Probing and backoff
# ----------------------------------------------------------------------

class TestProbing:
    def test_backoff_stays_inside_bounds(self):
        """Probe intervals start at the floor, grow by the configured
        factor and saturate at the ceiling."""
        config = QuicConfig()
        trace = Tracer()
        res = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=200_000,
            timeline=failure_timeline(0.3, path=0, mode="blackhole"),
            quic_config=config, trace=trace, timeout=60.0,
        )
        res.sim.run(until=res.sim.now + 15.0)  # let the probe budget run out
        probes = [
            ev for ev in trace.events_of("path", "probe")
            if ev.host == "client" and ev.path_id == 0
        ]
        assert len(probes) == config.path_max_probes
        intervals = [ev.data["interval"] for ev in probes]
        assert intervals[0] == config.probe_interval_initial
        for prev, cur in zip(intervals, intervals[1:]):
            assert cur == pytest.approx(
                min(prev * config.probe_backoff, config.probe_interval_max)
            )
        assert all(
            config.probe_interval_initial <= iv <= config.probe_interval_max
            for iv in intervals
        )

    def test_exhausted_budget_abandons(self):
        trace = Tracer()
        res = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=200_000,
            timeline=failure_timeline(0.3, path=0, mode="blackhole"),
            trace=trace, timeout=60.0,
        )
        res.sim.run(until=res.sim.now + 15.0)
        assert res.client.connection.paths[0].liveness is PathLiveness.ABANDONED
        assert not res.client.connection.paths[0].active
        abandoned = [
            ev for ev in trace.events_of("path", "abandoned")
            if ev.host == "client" and ev.path_id == 0
        ]
        assert abandoned and abandoned[0].data["reason"] == "probe_timeout"
        # The full lifecycle appears in order on the event stream.
        names = [
            ev.name for ev in trace.events_of("path")
            if ev.host == "client" and ev.path_id == 0
            and ev.name in ("potentially_failed", "probing", "abandoned")
        ]
        assert names[0] == "potentially_failed"
        assert "probing" in names
        assert names[-1] == "abandoned"
        assert names.index("probing") < names.index("abandoned")


# ----------------------------------------------------------------------
# Sanitizer invariants (REPRO_SANITIZE)
# ----------------------------------------------------------------------

class TestSanitizerInvariants:
    def test_probe_interval_outside_bounds_trips(self):
        sim, topo, client, server = mp_pair()
        path = client.paths[1]
        client._mark_potentially_failed(path, source="rto")
        path.probe_interval = 99.0  # below-floor/above-ceiling poke
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="backoff bounds"):
                client._schedule_probe(path)

    def test_eliciting_send_on_abandoned_path_trips(self):
        sim, topo, client, server = mp_pair()
        path = client.paths[1]
        client._mark_potentially_failed(path, source="rto")
        client._abandon_path(path, reason="test")
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="abandoned"):
                client._send_packet(path, (PingFrame(),))

    def test_scheduler_rejects_probing_path(self):
        from repro.core.scheduler import make_scheduler

        sim, topo, client, server = mp_pair()
        path = client.paths[1]
        client._mark_potentially_failed(path, source="rto")
        client._set_liveness(path, PathLiveness.PROBING)
        scheduler = make_scheduler("lowest_rtt")
        with sanitize.enabled():
            with pytest.raises(SanitizerError, match="probing or abandoned"):
                scheduler.choose([path])


# ----------------------------------------------------------------------
# Permanent single-path failure (e2e guarantee)
# ----------------------------------------------------------------------

class TestPermanentFailure:
    @pytest.fixture(scope="class")
    def failed_run(self):
        """Interface 0 goes down for good mid-transfer and never
        returns; the whole run executes under the sanitizer."""
        trace = Tracer()
        with sanitize.enabled():
            res = run_transfer(
                "mpquic", TWO_CLEAN_PATHS, file_size=3_000_000,
                timeline=failure_timeline(0.5, path=0, mode="down"),
                trace=trace, timeout=120.0,
            )
            res.sim.run(until=res.sim.now + 15.0)  # through abandonment
        return res

    def test_completes_on_surviving_path(self, failed_run):
        assert failed_run.ok
        assert failed_run.app.bytes_received == 3_000_000

    def test_inflight_bytes_were_reinjected(self, failed_run):
        assert failed_run.server.connection.stats.reinjected_bytes > 0
        reinjects = [
            ev for ev in failed_run.trace.events_of("path", "reinject")
            if ev.path_id == 0
        ]
        assert reinjects
        assert any(ev.data["stream_bytes"] > 0 for ev in reinjects)

    def test_path_ends_abandoned(self, failed_run):
        assert (
            failed_run.client.connection.paths[0].liveness is PathLiveness.ABANDONED
        )
        abandoned = failed_run.trace.events_of("path", "abandoned")
        assert any(
            ev.host == "client" and ev.path_id == 0 for ev in abandoned
        )

    def test_scheduler_never_selects_suspect_path(self, failed_run):
        """After the failure is detected, fresh data only rides path 1;
        path 0 sees probes at most."""
        t_pf = min(
            ev.time
            for ev in failed_run.trace.events_of("path", "potentially_failed")
            if ev.host == "server" and ev.path_id == 0
        )
        selected = failed_run.trace.events_of(
            "scheduler", "path_selected", "server", 0, t_min=t_pf
        )
        assert not selected

    def test_abandoned_path_is_retired_in_path_manager(self, failed_run):
        assert failed_run.client.connection.path_manager.is_retired(0)


# ----------------------------------------------------------------------
# Connection lifetime limits
# ----------------------------------------------------------------------

class TestLifetimeLimits:
    def test_total_blackhole_idle_times_out(self):
        """The acceptance guarantee: when every path dies, the transfer
        terminates with a clean idle-timeout error at the configured
        deadline — not a simulation hang."""
        trace = Tracer()
        config = QuicConfig(idle_timeout=5.0)
        res = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=5_000_000,
            timeline=total_blackhole(1.0),
            quic_config=config, trace=trace, timeout=600.0,
        )
        assert not res.ok
        assert res.client.connection.closed
        assert isinstance(res.client.connection.close_error, IdleTimeoutError)
        closes = [
            ev for ev in trace.events_of("connection", "idle_timeout")
            if ev.host == "client"
        ]
        assert closes
        # Last receipt is shortly after the blackhole at t=1.0; the
        # error must land one idle period later, not "eventually".
        assert 5.9 <= closes[0].time <= 7.0

    def test_idle_timer_disabled_by_default(self):
        sim, topo, client, server = mp_pair()
        assert client.config.idle_timeout == 0.0
        assert client._idle_timer is None

    def test_handshake_deadline(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, [PathConfig(10, 40, 50)], seed=1)
        topo.forward_links[0].set_loss_rate(1.0)  # CHLO never arrives
        client = QuicConnection(
            sim, topo.client, "client", QuicConfig(handshake_timeout=1.5)
        )
        QuicConnection(sim, topo.server, "server", QuicConfig())
        client.connect()
        sim.run(until=10.0)
        assert client.closed and not client.established
        assert isinstance(client.close_error, HandshakeTimeoutError)

    def test_all_paths_abandoned_closes_with_error(self):
        """Without an idle timeout, the probe budget still bounds the
        connection's lifetime: abandoning the last path closes it."""
        trace = Tracer()
        config = QuicConfig(path_max_probes=2)
        res = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=5_000_000,
            timeline=total_blackhole(0.5),
            quic_config=config, trace=trace, timeout=600.0,
        )
        assert not res.ok
        assert isinstance(res.client.connection.close_error, NoViablePathError)
        assert all(
            p.liveness is PathLiveness.ABANDONED
            for p in res.client.connection.paths.values()
        )
        assert trace.events_of("connection", "no_viable_path")
