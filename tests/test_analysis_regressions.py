"""Regression tests for the real defects the static analyzer surfaced.

Each test pins the *behavioural* consequence of a finding from
``python -m repro.analysis`` so the fixes cannot silently regress:

- ``float-equality`` in ``repro.cc.olia``: the smoothed-RTT seeding
  test used ``== 0.0``, so a negative zero or a tiny negative artifact
  would skip the seeding branch and poison the EWMA.
- ``obs-category`` in ``repro.quic.connection``: telemetry emissions
  used literal category strings, which can drift from the registered
  ``CAT_*`` vocabulary without anything failing.
"""

from repro.cc.olia import OliaCoordinator
from repro.obs import Tracer
from repro.obs.events import CATEGORIES

from tests.helpers import TWO_CLEAN_PATHS, run_transfer


class TestOliaRttSeeding:
    def _path(self):
        coordinator = OliaCoordinator(mss=1400)
        return coordinator.path_controller(0)

    def test_first_sample_seeds_the_estimate(self):
        path = self._path()
        path.on_ack(0.1, 1400, rtt=0.05)
        assert path.smoothed_rtt == 0.05

    def test_negative_zero_still_counts_as_unseeded(self):
        # `== 0.0` happened to accept -0.0 too, but the guard's intent
        # is "no sample yet": any non-positive value must reseed rather
        # than be blended into the EWMA.
        path = self._path()
        path.smoothed_rtt = -0.0
        path.on_ack(0.1, 1400, rtt=0.05)
        assert path.smoothed_rtt == 0.05

    def test_negative_artifact_reseeds_instead_of_blending(self):
        path = self._path()
        path.smoothed_rtt = -1e-9  # would survive an exact == 0.0 test
        path.on_ack(0.1, 1400, rtt=0.05)
        assert path.smoothed_rtt == 0.05

    def test_subsequent_samples_blend(self):
        path = self._path()
        path.on_ack(0.1, 1400, rtt=0.04)
        path.on_ack(0.2, 1400, rtt=0.08)
        assert 0.04 < path.smoothed_rtt < 0.08


class TestEmittedCategoriesAreRegistered:
    def test_full_transfer_emits_only_known_categories(self):
        tracer = Tracer()
        result = run_transfer(
            "mpquic", TWO_CLEAN_PATHS, file_size=300_000, trace=tracer
        )
        assert result.ok
        seen = {event.category for event in tracer.events}
        assert seen, "transfer produced no telemetry at all"
        unknown = seen - set(CATEGORIES)
        assert not unknown, f"unregistered event categories emitted: {unknown}"
