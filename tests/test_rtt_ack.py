"""Tests for RTT estimation and the receiver-side ACK manager."""

import pytest

from repro.quic.ackmgr import ACK_EVERY_N, AckManager
from repro.quic.frames import MAX_ACK_RANGES
from repro.quic.rtt import RttEstimator


class TestRttEstimator:
    def test_no_sample_initially(self):
        rtt = RttEstimator()
        assert not rtt.has_sample
        assert rtt.rto() == 0.5  # initial RTO before any sample

    def test_first_sample_initialises(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        assert rtt.smoothed == pytest.approx(0.1)
        assert rtt.variance == pytest.approx(0.05)
        assert rtt.min_rtt == pytest.approx(0.1)

    def test_ewma_smoothing(self):
        rtt = RttEstimator()
        rtt.update(0.1)
        rtt.update(0.2)
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.2)

    def test_ack_delay_subtracted_in_quic_mode(self):
        rtt = RttEstimator(use_ack_delay=True)
        rtt.update(0.1)
        rtt.update(0.15, ack_delay=0.04)  # adjusted to 0.11
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.11)

    def test_ack_delay_not_below_min(self):
        rtt = RttEstimator(use_ack_delay=True)
        rtt.update(0.1)
        # Subtracting would push below min_rtt: keep the raw sample.
        rtt.update(0.105, ack_delay=0.05)
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.105)

    def test_karn_mode_ignores_ack_delay(self):
        rtt = RttEstimator(use_ack_delay=False)
        rtt.update(0.1)
        rtt.update(0.15, ack_delay=0.04)
        assert rtt.smoothed == pytest.approx(0.875 * 0.1 + 0.125 * 0.15)

    def test_nonpositive_samples_ignored(self):
        rtt = RttEstimator()
        rtt.update(0.0)
        rtt.update(-1.0)
        assert not rtt.has_sample

    def test_rto_bounds(self):
        rtt = RttEstimator()
        rtt.update(0.001)
        assert rtt.rto(min_rto=0.2) >= 0.2
        rtt2 = RttEstimator()
        rtt2.update(100.0)
        assert rtt2.rto(max_rto=60.0) <= 60.0

    def test_min_rtt_tracks_smallest(self):
        rtt = RttEstimator()
        for s in (0.2, 0.1, 0.3, 0.05):
            rtt.update(s)
        assert rtt.min_rtt == pytest.approx(0.05)


class TestAckManager:
    def test_ack_pending_after_eliciting(self):
        mgr = AckManager(path_id=0)
        mgr.on_packet_received(0, now=0.0, ack_eliciting=True)
        assert mgr.ack_pending
        assert not mgr.should_ack_now()  # below threshold, no gap

    def test_ack_every_second_packet(self):
        mgr = AckManager(path_id=0)
        for pn in range(ACK_EVERY_N):
            mgr.on_packet_received(pn, now=0.0, ack_eliciting=True)
        assert mgr.should_ack_now()

    def test_gap_triggers_immediate_ack(self):
        mgr = AckManager(path_id=0)
        mgr.on_packet_received(0, now=0.0, ack_eliciting=True)
        mgr.build_ack(0.0)
        mgr.on_packet_received(2, now=0.1, ack_eliciting=True)  # pn 1 missing
        assert mgr.should_ack_now()

    def test_non_eliciting_does_not_demand_ack(self):
        mgr = AckManager(path_id=0)
        mgr.on_packet_received(0, now=0.0, ack_eliciting=False)
        assert not mgr.ack_pending

    def test_build_ack_contents(self):
        mgr = AckManager(path_id=2)
        for pn in (0, 1, 2, 5, 6):
            mgr.on_packet_received(pn, now=1.0, ack_eliciting=True)
        ack = mgr.build_ack(now=1.010)
        assert ack.path_id == 2
        assert ack.largest_acked == 6
        assert ack.ranges == ((5, 7), (0, 3))
        assert ack.ack_delay == pytest.approx(0.010)

    def test_build_ack_commits_state(self):
        mgr = AckManager(path_id=0)
        mgr.on_packet_received(0, now=0.0, ack_eliciting=True)
        mgr.build_ack(0.0)
        assert not mgr.ack_pending

    def test_build_ack_peek_does_not_commit(self):
        mgr = AckManager(path_id=0)
        mgr.on_packet_received(0, now=0.0, ack_eliciting=True)
        mgr.build_ack(0.0, commit=False)
        assert mgr.ack_pending
        mgr.commit_ack()
        assert not mgr.ack_pending

    def test_duplicate_not_counted(self):
        mgr = AckManager(path_id=0)
        mgr.on_packet_received(0, now=0.0, ack_eliciting=True)
        mgr.on_packet_received(0, now=0.1, ack_eliciting=True)
        assert not mgr.should_ack_now()  # still a single distinct packet

    def test_range_cap(self):
        mgr = AckManager(path_id=0)
        for pn in range(0, 4 * (MAX_ACK_RANGES + 10), 4):
            mgr.on_packet_received(pn, now=0.0, ack_eliciting=True)
        ack = mgr.build_ack(0.0)
        assert len(ack.ranges) == MAX_ACK_RANGES
        # Highest ranges are reported first.
        assert ack.ranges[0][1] - 1 == ack.largest_acked

    def test_empty_build_returns_none(self):
        mgr = AckManager(path_id=0)
        assert mgr.build_ack(0.0) is None

    def test_forget_below(self):
        mgr = AckManager(path_id=0)
        for pn in range(10):
            mgr.on_packet_received(pn, now=0.0, ack_eliciting=True)
        mgr.forget_below(5)
        ack = mgr.build_ack(0.0)
        assert ack.ranges == ((5, 10),)
