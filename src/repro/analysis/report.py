"""Reporters for analyzer findings: human text and machine JSON.

The JSON document is versioned and round-trippable so CI tooling can
diff findings between runs without re-parsing analyzer output.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.core import Finding, all_rules

#: Bump on any backwards-incompatible change to the JSON layout.
REPORT_VERSION = 1


def render_text(findings: Sequence[Finding], files_analyzed: int) -> str:
    """Conventional compiler-style ``path:line:col: [rule] message``."""
    lines = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"{len(findings)} {noun} in {files_analyzed} file(s) analyzed"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_analyzed: int) -> str:
    document: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "files_analyzed": files_analyzed,
        "count": len(findings),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def findings_from_json(text: str) -> List[Finding]:
    """Parse a JSON report back into findings (schema round-trip)."""
    document = json.loads(text)
    version = document.get("version")
    if version != REPORT_VERSION:
        raise ValueError(f"unsupported report version: {version!r}")
    out = [
        Finding(
            path=entry["path"],
            line=int(entry["line"]),
            col=int(entry["col"]),
            rule=entry["rule"],
            message=entry["message"],
        )
        for entry in document["findings"]
    ]
    if len(out) != document.get("count"):
        raise ValueError("report count does not match findings array")
    return out


def render_rule_list() -> str:
    """The registered rule catalog for ``--list-rules``."""
    lines = []
    for rule_id, rule_cls in sorted(all_rules().items()):
        lines.append(f"{rule_id}: {rule_cls.rationale}")
    return "\n".join(lines)
