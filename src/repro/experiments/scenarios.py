"""Fixed experiment scenarios beyond the WSP sweeps.

Two families live here:

* :class:`HandoverScenario` — the request/response setup of §4.3 (an
  initial 15 ms path turning completely lossy after 3 s), expressed as
  a :class:`repro.netsim.faults.FaultTimeline` so the failure flows
  through the fault-injection subsystem and shows up in traces.
* :class:`MobilityScenario` / :func:`wifi_to_lte_handover` — a bulk
  transfer whose initial (WiFi) path goes dark mid-flight, forcing the
  transport onto the surviving (LTE) path.  Parameterized by the
  failure instant and mode, this is the scenario family behind the
  fault-injection reproduction of the paper's fast-handover claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, ItemsView, Iterator, KeysView, List, Sequence, Tuple

from repro.netsim.faults import (
    Blackhole,
    FaultEvent,
    FaultTimeline,
    LinkDown,
    LossChange,
    loss_change,
)
from repro.netsim.topology import PathConfig


@dataclass(frozen=True)
class HandoverScenario:
    """Parameters of the Fig. 11 experiment."""

    paths: Tuple[PathConfig, PathConfig]
    message_size: int = 750
    interval: float = 0.4
    total_requests: int = 35
    failure_time: float = 3.0
    #: Loss applied to the initial path at ``failure_time`` (percent).
    failure_loss_percent: float = 100.0

    def timeline(self) -> FaultTimeline:
        """The scenario's network dynamics as a fault timeline."""
        return FaultTimeline(
            (loss_change(self.failure_time, 0, self.failure_loss_percent),)
        )


#: The paper's §4.3 configuration.  Capacities are not specified there;
#: 10 Mbps links keep serialization delay negligible for 750 B messages.
HANDOVER_SCENARIO = HandoverScenario(
    paths=(
        PathConfig(capacity_mbps=10.0, rtt_ms=15.0, queuing_delay_ms=20.0),
        PathConfig(capacity_mbps=10.0, rtt_ms=25.0, queuing_delay_ms=20.0),
    )
)


# ----------------------------------------------------------------------
# WiFi -> LTE mobility (bulk transfer across a mid-flight path failure)
# ----------------------------------------------------------------------

#: The WiFi path the transfer starts on: short RTT, moderate capacity —
#: and the one that fails.
WIFI_PATH = PathConfig(capacity_mbps=10.0, rtt_ms=15.0, queuing_delay_ms=30.0)

#: The cellular path that must absorb the transfer after the failure.
LTE_PATH = PathConfig(capacity_mbps=25.0, rtt_ms=40.0, queuing_delay_ms=60.0)

#: Supported failure modes for the WiFi path.
FAILURE_MODES = ("blackhole", "down", "lossy")


@dataclass(frozen=True)
class MobilityScenario:
    """A bulk transfer over a network that mutates mid-flight.

    ``timeline`` is part of the scenario's identity: the experiment
    layers fold it into result-cache keys, so the same paths with
    different dynamics never collide in the cache.
    """

    name: str
    paths: Tuple[PathConfig, ...]
    timeline: FaultTimeline
    file_size: int = 11_000_000
    #: Generous ceiling: a single-path transport stuck in RTO backoff
    #: on the dead path reports this as its completion time.
    timeout: float = 45.0


def wifi_to_lte_handover(
    failure_time: float = 2.0,
    failure_mode: str = "blackhole",
    file_size: int = 11_000_000,
) -> MobilityScenario:
    """The WiFi path goes dark at ``failure_time``; LTE must carry on.

    Modes: ``blackhole`` (datagrams serialized then silently dropped —
    the hardest case: no local error, only timers), ``down`` (NIC
    rejects sends and flushes its queue), ``lossy`` (100 % random loss,
    the paper's §4.3 formulation).
    """
    if failure_mode == "blackhole":
        mutation = Blackhole()
    elif failure_mode == "down":
        mutation = LinkDown()
    elif failure_mode == "lossy":
        mutation = LossChange(100.0)
    else:
        raise ValueError(
            f"unknown failure mode {failure_mode!r}; pick from {FAILURE_MODES}"
        )
    return MobilityScenario(
        name=f"wifi-to-lte@{failure_time:g}s/{failure_mode}",
        paths=(WIFI_PATH, LTE_PATH),
        timeline=FaultTimeline((FaultEvent(failure_time, 0, mutation),)),
        file_size=file_size,
    )


def wifi_to_lte_family(
    failure_times: Sequence[float] = (1.0, 1.5, 2.0, 2.5),
    failure_mode: str = "blackhole",
    file_size: int = 11_000_000,
) -> List[MobilityScenario]:
    """The handover scenario swept over the failure instant."""
    return [
        wifi_to_lte_handover(t, failure_mode, file_size) for t in failure_times
    ]


# ----------------------------------------------------------------------
# Open-loop workload presets
# ----------------------------------------------------------------------

#: Bottleneck shared by the workload presets: 20 Mbps, 30 ms RTT,
#: 50 ms of buffer — an open-loop storm contends hard, a lone short
#: flow is access-limited.
WORKLOAD_BOTTLENECK = PathConfig(
    capacity_mbps=20.0, rtt_ms=30.0, queuing_delay_ms=50.0
)


@dataclass(frozen=True)
class WorkloadPreset:
    """A named open-loop workload: the spec plus its bottleneck.

    The protocol stays a free axis (CLI flag / sweep dimension), so
    one preset replays the identical flow plan against every protocol.
    """

    name: str
    spec: "WorkloadSpec"
    bottleneck: PathConfig
    description: str = ""


def _workload_presets() -> "Dict[str, WorkloadPreset]":
    # Imported lazily: workload.py's CLI imports this module, and a
    # module-level import back into workload would be circular.
    from repro.experiments.workload import WorkloadSpec

    return {
        "smoke": WorkloadPreset(
            name="smoke",
            spec=WorkloadSpec(
                n_flows=100, arrival="poisson", arrival_rate=100.0,
                size_dist="pareto", mean_size=50_000,
                fidelity="fluid", n_pairs=4, measure_every=10, seed=7,
            ),
            bottleneck=WORKLOAD_BOTTLENECK,
            description=(
                "CI-budget cell: 100 flows, fluid background, every "
                "10th arrival measured packet-level"
            ),
        ),
        "storm": WorkloadPreset(
            name="storm",
            spec=WorkloadSpec(
                n_flows=600, arrival="poisson", arrival_rate=400.0,
                size_dist="pareto", mean_size=200_000,
                fidelity="fluid", n_pairs=8, measure_every=0, seed=11,
            ),
            bottleneck=WORKLOAD_BOTTLENECK,
            description=(
                "headline: offered load ~30x the bottleneck, so "
                "hundreds of mice-and-elephants are concurrently in "
                "service (peak >= 500)"
            ),
        ),
        "fairness": WorkloadPreset(
            name="fairness",
            spec=WorkloadSpec(
                n_flows=32, arrival="deterministic", arrival_rate=200.0,
                size_dist="fixed", mean_size=200_000,
                fidelity="packet", n_pairs=32, seed=3,
            ),
            bottleneck=WORKLOAD_BOTTLENECK,
            description=(
                "same-RTT fixed-size packet-level flows; Jain over "
                "goodput should approach 1"
            ),
        ),
    }


class _PresetCatalogue:
    """Mapping-like lazy view over the preset table."""

    def __init__(self) -> None:
        self._table: "Dict[str, WorkloadPreset]" = {}

    def _load(self) -> "Dict[str, WorkloadPreset]":
        if not self._table:
            self._table = _workload_presets()
        return self._table

    def __getitem__(self, name: str) -> WorkloadPreset:
        return self._load()[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._load())

    def __len__(self) -> int:
        return len(self._load())

    def keys(self) -> "KeysView[str]":
        return self._load().keys()

    def items(self) -> "ItemsView[str, WorkloadPreset]":
        return self._load().items()


#: The named workloads the CLI, CI smoke cell and docs refer to.
WORKLOAD_PRESETS = _PresetCatalogue()
