"""Event loop for the network simulator.

A classic calendar-queue simulator: callbacks are scheduled at absolute
simulated times and executed in order.  Ties are broken by insertion
order so runs are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.util import sanitize as _san


class Timer:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled", "_sim", "_popped")

    def __init__(
        self,
        time: float,
        fn: Callable[..., None],
        args: Tuple[Any, ...],
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim
        self._popped = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent.

        Cancelling a timer that already fired (a stale handle) is a
        no-op and does not perturb the simulator's live-event count.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None and not self._popped:
                self._sim._note_cancelled()


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "a")
    >>> _ = sim.schedule(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    #: Lazy-compaction thresholds: rebuild the heap once at least
    #: ``COMPACT_MIN`` entries are cancelled AND they make up more than
    #: ``COMPACT_FRACTION`` of the queue.  Loss-recovery timers are
    #: cancelled/rearmed on every ACK, so without compaction dead
    #: entries dominate the heap and every push/pop pays for them.
    COMPACT_MIN = 64
    COMPACT_FRACTION = 0.5

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Timer]] = []
        self._counter = itertools.count()
        self._cancelled = 0
        self.events_processed = 0

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        Body mirrors :meth:`schedule_at`: this runs once per timer on
        the packet hot path, so the extra delegation call is avoided.
        """
        time = self.now + delay
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        if _san.SANITIZE:
            _san.check(
                time == time,  # repro: allow[float-equality] intentional NaN probe
                "timer scheduled at NaN simulated time",
                now=self.now,
            )
        timer = Timer(time, fn, args, sim=self)
        heapq.heappush(self._heap, (time, next(self._counter), timer))
        if _metrics.METRICS:
            _metrics.REGISTRY.inc("engine.timers_scheduled")
        return timer

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        if _san.SANITIZE:
            # A NaN deadline passes the < check above but destroys the
            # heap invariant; reject it before it is queued.
            _san.check(
                time == time,  # repro: allow[float-equality] intentional NaN probe
                "timer scheduled at NaN simulated time",
                now=self.now,
            )
        timer = Timer(time, fn, args, sim=self)
        heapq.heappush(self._heap, (time, next(self._counter), timer))
        if _metrics.METRICS:
            _metrics.REGISTRY.inc("engine.timers_scheduled")
        return timer

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if _metrics.METRICS:
            _metrics.REGISTRY.inc("engine.timers_cancelled")
        if (
            self._cancelled >= self.COMPACT_MIN
            and self._cancelled > len(self._heap) * self.COMPACT_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        The ``(time, seq, timer)`` entries keep their original sequence
        numbers, so event ordering — including insertion-order tie
        breaks — is unchanged and runs stay deterministic.
        """
        live = []
        for entry in self._heap:
            if entry[2].cancelled:
                entry[2]._popped = True
            else:
                live.append(entry)
        # In-place so the run loops may hold a local alias to the heap.
        self._heap[:] = live
        heapq.heapify(self._heap)
        self._cancelled = 0
        if _metrics.METRICS:
            _metrics.REGISTRY.inc("engine.heap_compactions")

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events in time order.

        Args:
            until: stop once simulated time would exceed this value
                (remaining events stay queued).
            max_events: safety valve against runaway simulations.
        """
        if _metrics.METRICS:
            # The loop runs inside an `engine` wall-time scope; each
            # callback re-scopes to the subsystem owning it, so heap
            # bookkeeping is attributed to the engine and callback work
            # to the layer actually doing it.
            _metrics.REGISTRY.enter("engine")
            try:
                self._run_loop(until, max_events)
            finally:
                _metrics.REGISTRY.exit()
        else:
            self._run_loop(until, max_events)

    def _run_loop(
        self,
        until: Optional[float],
        max_events: Optional[int],
    ) -> None:
        processed = 0
        heap = self._heap  # compaction rebuilds it in place
        heappop = heapq.heappop
        while heap:
            time, _seq, timer = heap[0]
            if until is not None and time > until:
                self.now = until
                return
            heappop(heap)
            timer._popped = True
            if timer.cancelled:
                self._cancelled -= 1
                continue
            if _san.SANITIZE:
                # Simulated time is monotone: an event firing before
                # `now` means a timer was queued into the past.
                _san.check(
                    time >= self.now,
                    "event fired before current simulated time",
                    event_time=time,
                    now=self.now,
                )
            self.now = time
            if _metrics.METRICS:
                self._dispatch_instrumented(timer)
            else:
                timer.fn(*timer.args)
            processed += 1
            self.events_processed += 1
            if max_events is not None and processed >= max_events:
                return
        if until is not None:
            self.now = max(self.now, until)

    @staticmethod
    def _dispatch_instrumented(timer: Timer) -> None:
        """Fire one callback under metrics accounting (METRICS on)."""
        reg = _metrics.REGISTRY
        reg.inc("engine.events_processed")
        reg.enter(
            _metrics.subsystem_of(getattr(timer.fn, "__module__", None))
        )
        try:
            timer.fn(*timer.args)
        finally:
            reg.exit()

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        max_events: int = 100_000_000,
    ) -> bool:
        """Run until ``predicate()`` is true.  Returns False on timeout."""
        if _metrics.METRICS:
            _metrics.REGISTRY.enter("engine")
            try:
                return self._run_until_loop(predicate, timeout, max_events)
            finally:
                _metrics.REGISTRY.exit()
        return self._run_until_loop(predicate, timeout, max_events)

    def _run_until_loop(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float],
        max_events: int,
    ) -> bool:
        processed = 0
        heap = self._heap  # compaction rebuilds it in place
        heappop = heapq.heappop
        while not predicate():
            if not heap:
                return False
            time, _seq, timer = heappop(heap)
            timer._popped = True
            if timer.cancelled:
                self._cancelled -= 1
                continue
            if timeout is not None and time > timeout:
                self.now = timeout
                return False
            if _san.SANITIZE:
                _san.check(
                    time >= self.now,
                    "event fired before current simulated time",
                    event_time=time,
                    now=self.now,
                )
            self.now = time
            if _metrics.METRICS:
                self._dispatch_instrumented(timer)
            else:
                timer.fn(*timer.args)
            processed += 1
            self.events_processed += 1
            if processed >= max_events:
                raise RuntimeError("simulation exceeded the event budget")
        return True

    @property
    def live_events(self) -> int:
        """Number of queued events that will actually fire."""
        return len(self._heap) - self._cancelled

    @property
    def pending_events(self) -> int:
        """Alias of :attr:`live_events` (cancelled timers excluded)."""
        return self.live_events

    @property
    def queued_entries(self) -> int:
        """Raw heap size, cancelled entries included (introspection)."""
        return len(self._heap)
