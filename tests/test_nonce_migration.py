"""Tests for the §3 nonce-uniqueness rule and QUIC connection migration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection
from repro.quic.nonce import (
    NonceReuseError,
    PathAwareNonce,
    SharedNonceSpace,
)

from tests.helpers import TWO_CLEAN_PATHS, run_transfer


class TestPathAwareNonce:
    def test_same_pn_on_different_paths_is_fine(self):
        n = PathAwareNonce()
        a = n.derive(0, 5)
        b = n.derive(1, 5)
        assert a != b

    def test_reuse_within_path_rejected(self):
        n = PathAwareNonce()
        n.derive(0, 5)
        with pytest.raises(NonceReuseError):
            n.derive(0, 5)

    def test_non_monotonic_rejected(self):
        n = PathAwareNonce()
        n.derive(0, 5)
        with pytest.raises(NonceReuseError):
            n.derive(0, 4)

    def test_range_validation(self):
        n = PathAwareNonce()
        with pytest.raises(ValueError):
            n.derive(300, 0)
        with pytest.raises(ValueError):
            n.derive(0, 1 << 90)

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 500)),
            min_size=1, max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_all_derived_nonces_distinct(self, pairs):
        n = PathAwareNonce()
        seen = set()
        for path_id, pn in pairs:
            try:
                value = n.derive(path_id, pn)
            except NonceReuseError:
                continue
            assert value not in seen
            seen.add(value)


class TestSharedNonceSpace:
    def test_pn_consumed_once_across_paths(self):
        n = SharedNonceSpace()
        n.derive(0, 7)
        with pytest.raises(NonceReuseError):
            n.derive(1, 7)

    def test_distinct_pns_fine(self):
        n = SharedNonceSpace()
        assert n.derive(0, 1) != n.derive(1, 2)


class TestConnectionNonceIntegration:
    def test_multipath_transfer_never_reuses_nonce(self):
        # The connection derives a nonce for every transmitted packet
        # and raises on reuse; a full lossy multipath transfer passing
        # proves the invariant holds under retransmission and
        # duplication.
        result = run_transfer(
            "mpquic",
            [
                PathConfig(10, 30, 50, loss_percent=2.0),
                PathConfig(5, 60, 80, loss_percent=2.0),
            ],
            file_size=500_000,
        )
        assert result.ok


class TestConnectionMigration:
    def make_pair(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, TWO_CLEAN_PATHS, seed=1)
        cfg = QuicConfig(migrate_on_failure=True)
        client = QuicConnection(sim, topo.client, "client", cfg)
        server = QuicConnection(sim, topo.server, "server", QuicConfig())
        return sim, topo, client, server

    def test_explicit_migrate_switches_interface(self):
        sim, topo, client, server = self.make_pair()
        client.connect()
        sim.run(until=1.0)
        client.migrate(1)
        assert client.paths[0].interface_index == 1
        # Congestion and RTT state were reset (cold path).
        assert not client.paths[0].rtt.has_sample

    def test_migrate_to_same_interface_is_noop(self):
        sim, topo, client, server = self.make_pair()
        client.connect()
        sim.run(until=1.0)
        rtt = client.paths[0].rtt
        client.migrate(0)
        assert client.paths[0].rtt is rtt

    def test_traffic_continues_after_migration(self):
        sim, topo, client, server = self.make_pair()
        received = bytearray()
        state, done = {}, {}

        def osd(sid, data, fin):
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"m" * 400_000, fin=True)

        server.on_stream_data = osd

        def ocd(sid, data, fin):
            received.extend(data)
            if fin:
                done["t"] = sim.now

        client.on_stream_data = ocd
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"GET", fin=True
        )
        client.connect()
        sim.run(until=0.15)
        client.migrate(1)
        ok = sim.run_until(lambda: "t" in done, timeout=30.0)
        assert ok
        assert len(received) == 400_000

    def test_auto_migration_on_path_failure(self):
        # A pure receiver needs keepalives to notice a dead path.
        sim = Simulator()
        topo = TwoPathTopology(sim, TWO_CLEAN_PATHS, seed=1)
        cfg = QuicConfig(migrate_on_failure=True, keepalive_interval=0.2)
        client = QuicConnection(sim, topo.client, "client", cfg)
        server = QuicConnection(sim, topo.server, "server", QuicConfig())
        state, done = {}, {}

        def osd(sid, data, fin):
            if sid not in state:
                state[sid] = True
                server.send_stream_data(sid, b"m" * 300_000, fin=True)

        server.on_stream_data = osd
        client.on_stream_data = (
            lambda sid, d, fin: done.update(t=sim.now) if fin else None
        )
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"GET", fin=True
        )
        client.connect()
        sim.run(until=0.1)
        topo.set_path_loss(0, 100.0)  # interface 0 dies
        ok = sim.run_until(lambda: "t" in done, timeout=60.0)
        assert ok
        assert client.paths[0].interface_index == 1
