"""The opt-in performance-metrics registry (REPRO_METRICS=1).

Three properties under test, mirroring the sanitizer's contract:
the wiring costs nothing when metrics are off (no registry method is
ever reached from the hot paths), the counters are *accurate* (the
engine counter equals the simulator's own events_processed), and the
exclusive scope stack attributes essentially all of a run's wall time
to subsystems.
"""

import json

import pytest

from repro.netsim.engine import Simulator
from repro.obs import events as obs_events
from repro.obs import metrics
from repro.obs.events import Tracer

from tests.helpers import TWO_CLEAN_PATHS, run_transfer


class TestSwitch:
    def test_off_by_default(self):
        # The suite runs without REPRO_METRICS; the global must be off.
        assert metrics.METRICS is False

    def test_enabled_context_restores_previous_state(self):
        before = metrics.METRICS
        with metrics.enabled():
            assert metrics.METRICS is True
            with metrics.enabled(False):
                assert metrics.METRICS is False
            assert metrics.METRICS is True
        assert metrics.METRICS is before

    def test_enabled_resets_registry_unless_fresh_false(self):
        with metrics.enabled():
            metrics.REGISTRY.inc("x")
        with metrics.enabled():
            assert "x" not in metrics.REGISTRY.counters
        with metrics.enabled(fresh=False):
            metrics.REGISTRY.inc("y")
        with metrics.enabled(fresh=False):
            assert metrics.REGISTRY.counters["y"] == 1


class _RecordingRegistry:
    """Stand-in registry that records every method touch."""

    def __init__(self, calls):
        self._calls = calls

    def __getattr__(self, name):
        def recorder(*args, **kwargs):
            self._calls.append((name, args))
        return recorder


class TestZeroOverheadWiring:
    """With metrics off, no hot path ever reaches the registry."""

    def test_no_registry_calls_during_a_full_transfer(self, monkeypatch):
        calls = []
        monkeypatch.setattr(metrics, "REGISTRY", _RecordingRegistry(calls))
        with metrics.enabled(False, fresh=False):
            result = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=200_000)
        assert result.ok
        assert calls == []

    def test_same_transfer_feeds_the_registry_when_enabled(self):
        with metrics.enabled() as reg:
            result = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=200_000)
            counters = dict(reg.counters)
        assert result.ok
        # Every instrumented family except the wire codec (the
        # simulator passes packets in memory) and the congestion
        # controller (clean paths never leave slow start) fires.
        for name in (
            "engine.events_processed",
            "engine.timers_scheduled",
            "engine.timers_cancelled",
            "quic.packets_sent",
            "quic.packets_received",
            "scheduler.decisions",
            "reassembly.chunks_inserted",
            "reassembly.deliveries",
        ):
            assert counters.get(name, 0) > 0, name

    def test_cc_state_transitions_counted_on_loss(self):
        from repro.cc.newreno import NewReno

        with metrics.enabled() as reg:
            cc = NewReno()
            cc.on_loss_event(1.0, sent_time=0.5)
            cc.on_rto(2.0)
            counters = dict(reg.counters)
        assert counters["cc.state_transitions"] == 2

    def test_counter_names_are_canonical(self):
        with metrics.enabled() as reg:
            run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=200_000)
            counters = dict(reg.counters)
        unknown = set(counters) - set(metrics.INSTRUMENTED_COUNTERS)
        assert not unknown, f"undocumented metric names: {unknown}"


class TestAccuracy:
    def test_engine_counter_matches_simulator_accounting(self):
        with metrics.enabled() as reg:
            result = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=200_000)
            processed = reg.counters["engine.events_processed"]
        assert processed == result.sim.events_processed

    def test_packet_counters_match_transport_stats(self):
        with metrics.enabled() as reg:
            result = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=200_000)
            counters = dict(reg.counters)
        client = result.client.connection
        server = result.server.connection
        sent = client.stats.packets_sent + server.stats.packets_sent
        received = (
            client.stats.packets_received + server.stats.packets_received
        )
        assert counters["quic.packets_sent"] == sent
        assert counters["quic.packets_received"] == received

    def test_heap_compactions_counted_under_churn(self):
        with metrics.enabled() as reg:
            sim = Simulator()
            for i in range(300):
                sim.schedule(1.0 + i * 1e-6, lambda: None).cancel()
            sim.schedule(2.0, lambda: None)
            sim.run()
            counters = dict(reg.counters)
        assert counters.get("engine.heap_compactions", 0) > 0
        assert counters["engine.timers_cancelled"] == 300

    def test_wire_codec_counters(self):
        from repro.quic.frames import PingFrame
        from repro.quic.packet import Packet

        with metrics.enabled() as reg:
            packet = Packet(
                path_id=0, packet_number=7, frames=(PingFrame(),),
                multipath=True,
            )
            assert Packet.decode(packet.encode()) == packet
            snap = reg.snapshot()
        assert snap["counters"]["wire.packets_encoded"] == 1
        assert snap["counters"]["wire.packets_decoded"] == 1
        hist = snap["histograms"]["wire.encoded_packet_bytes"]
        assert hist["count"] == 1
        assert hist["min"] == hist["max"] > 0


class TestWallTimeAttribution:
    def test_exclusive_scopes_sum_to_outer_elapsed(self):
        reg = metrics.MetricsRegistry()
        reg.enter("outer")
        reg.enter("inner")
        reg.exit()
        reg.enter("inner")
        reg.exit()
        reg.exit()
        snap = reg.snapshot()
        total = snap["wall_time_total_seconds"]
        assert set(snap["wall_time_seconds"]) == {"outer", "inner"}
        assert sum(snap["wall_time_seconds"].values()) == pytest.approx(total)

    def test_transfer_attribution_covers_most_of_the_run(self):
        """ISSUE acceptance: subsystem wall time >= 80% of sim wall time."""
        with metrics.enabled() as reg:
            t0 = metrics.clock()
            result = run_transfer("mpquic", TWO_CLEAN_PATHS, file_size=500_000)
            elapsed = metrics.clock() - t0
            snap = reg.snapshot()
        assert result.ok
        wall = snap["wall_time_seconds"]
        total = snap["wall_time_total_seconds"]
        assert sum(wall.values()) == pytest.approx(total)
        # The transport does the work, and the exclusive-scope stack
        # re-attributes it out of the engine's dispatch loop.
        assert wall.get("quic", 0.0) > 0.0
        assert wall.get("engine", 0.0) > 0.0
        assert total >= 0.8 * elapsed

    def test_scope_stack_balanced_after_callback_exception(self):
        with metrics.enabled() as reg:
            sim = Simulator()

            def boom():
                raise RuntimeError("callback failure")

            sim.schedule(1.0, boom)
            with pytest.raises(RuntimeError, match="callback failure"):
                sim.run()
            assert reg._stack == []

    def test_timed_scope_is_noop_when_off(self):
        with metrics.enabled(False):
            with metrics.timed("harness"):
                pass
            assert metrics.REGISTRY.wall == {}
        with metrics.enabled():
            with metrics.timed("harness"):
                pass
            assert "harness" in metrics.REGISTRY.wall


class TestSubsystemOf:
    @pytest.mark.parametrize(
        "module,expected",
        [
            ("repro.quic.connection", "quic"),
            ("repro.netsim.engine", "netsim"),
            ("repro.apps.bulk", "apps"),
            ("tests.helpers", "other"),
            ("heapq", "other"),
            (None, "other"),
        ],
    )
    def test_mapping(self, module, expected):
        assert metrics.subsystem_of(module) == expected


class TestHistogram:
    def test_power_of_two_buckets(self):
        hist = metrics.Histogram()
        for value in (0, 1, 2, 3, 1000, 1400):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 6
        assert snap["min"] == 0 and snap["max"] == 1400
        # 0 -> bucket 0; 1 -> 1; 2,3 -> 2; 1000 -> 10; 1400 -> 11.
        assert snap["buckets"] == {"0": 1, "1": 1, "2": 2, "10": 1, "11": 1}

    def test_empty_snapshot_has_no_extremes(self):
        snap = metrics.Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestExport:
    def test_category_comes_from_the_registry(self):
        # Regression pin for the obs-schema fix: metrics.py used to
        # carry its own ``CATEGORY = "metrics"`` literal (it cannot
        # import events at module level), which is exactly the drift
        # the whole-program obs-schema rule flags.  The single source
        # of truth is the registry constant, imported at call time.
        assert obs_events.CAT_METRICS in obs_events.CATEGORIES
        assert not hasattr(metrics, "CATEGORY")
        with metrics.enabled() as reg:
            reg.inc("engine.events_processed")
            tracer = Tracer()
            metrics.emit_into(tracer, now=0.0)
        assert {e.category for e in tracer.events} == {obs_events.CAT_METRICS}

    def test_emit_into_produces_metrics_events(self):
        with metrics.enabled() as reg:
            reg.inc("engine.events_processed", 5)
            reg.gauge("heap.size", 17.0)
            reg.observe("wire.encoded_packet_bytes", 1300)
            with metrics.timed("engine"):
                pass
            tracer = Tracer()
            emitted = metrics.emit_into(tracer, now=2.5)
        assert emitted == len(tracer.events) == 5
        assert {e.category for e in tracer.events} == {obs_events.CAT_METRICS}
        by_name = {e.name: e for e in tracer.events}
        assert by_name["counter"].data == {
            "metric": "engine.events_processed", "value": 5,
        }
        assert by_name["gauge"].data["metric"] == "heap.size"
        assert by_name["histogram"].data["count"] == 1
        assert by_name["wall_time"].data["subsystem"] == "engine"
        assert by_name["snapshot"].data["counters"] == 1
        assert all(e.time == 2.5 for e in tracer.events)

    def test_report_renders_metrics_section(self):
        from repro.obs.summary import format_report, summarize

        with metrics.enabled() as reg:
            reg.inc("engine.events_processed", 41)
            with metrics.timed("engine"):
                pass
            tracer = Tracer()
            metrics.emit_into(tracer)
        report = format_report(summarize(tracer))
        assert "runtime metrics (REPRO_METRICS):" in report
        assert "engine.events_processed: 41" in report
        assert "metrics=" in report  # per-category event counts

    def test_write_snapshot_round_trips(self, tmp_path):
        target = tmp_path / "metrics" / "snapshot.json"
        with metrics.enabled() as reg:
            reg.inc("engine.events_processed", 3)
            metrics.write_snapshot(target)
        data = json.loads(target.read_text())
        assert data["counters"] == {"engine.events_processed": 3}
        assert "wall_time_total_seconds" in data
