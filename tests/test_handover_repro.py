"""End-to-end reproduction: bulk transfer across a WiFi-to-LTE failure.

The acceptance experiment for the fault-injection layer: at t=2 s the
WiFi path blackholes mid-transfer.  MPQUIC must complete within 1.5x
the no-failure run; single-path QUIC pinned to the failed path must
take more than 3x (it sits in RTO backoff until the timeout).  The obs
trace must show the fault and the transport's reaction.  The sweep
cache must treat the fault timeline as part of a cell's identity.
"""

from __future__ import annotations

import pytest

from repro.experiments.parallel import (
    ResultCache,
    SweepCell,
    SweepStats,
    execute_cells,
)
from repro.experiments.runner import run_bulk, run_mobility
from repro.experiments.scenarios import (
    FAILURE_MODES,
    LTE_PATH,
    WIFI_PATH,
    wifi_to_lte_family,
    wifi_to_lte_handover,
)
from repro.netsim.faults import blackhole, timeline


@pytest.fixture(scope="module")
def scenario():
    return wifi_to_lte_handover(failure_time=2.0, failure_mode="blackhole")


@pytest.fixture(scope="module")
def baseline(scenario):
    """The same transfer with no failure injected."""
    return run_bulk(
        "mpquic", scenario.paths, scenario.file_size,
        initial_interface=0, timeout=scenario.timeout,
    )


@pytest.fixture(scope="module")
def mpquic_run(scenario):
    return run_mobility(scenario, "mpquic", collect_trace=True)


class TestHandoverReproduction:
    def test_baseline_completes(self, baseline):
        assert baseline.completed

    def test_mpquic_survives_failure_with_bounded_stall(
        self, baseline, mpquic_run
    ):
        assert mpquic_run.completed
        assert mpquic_run.transfer_time <= 1.5 * baseline.transfer_time

    def test_single_path_quic_on_failed_link_stalls(self, scenario, baseline):
        res = run_mobility(scenario, "quic")
        assert not res.completed
        assert res.transfer_time > 3.0 * baseline.transfer_time

    def test_trace_contains_fault_event(self, mpquic_run):
        faults = mpquic_run.trace.events_of(category="network")
        assert [(e.time, e.name, e.path_id) for e in faults] == [
            (2.0, "blackhole", 0)
        ]

    def test_trace_shows_path_potentially_failed_after_fault(self, mpquic_run):
        detections = mpquic_run.trace.events_of(
            category="path", name="potentially_failed", path_id=0
        )
        assert detections, "no potentially_failed transition recorded"
        first = min(e.time for e in detections)
        # Detection is timer-driven: after the fault, within a few RTOs.
        assert 2.0 < first < 4.0

    def test_run_is_deterministic(self, scenario, mpquic_run):
        again = run_mobility(scenario, "mpquic", collect_trace=True)
        assert again.transfer_time == mpquic_run.transfer_time
        assert len(again.trace.events) == len(mpquic_run.trace.events)

    @pytest.mark.parametrize("mode", FAILURE_MODES)
    def test_every_failure_mode_is_survivable(self, mode):
        sc = wifi_to_lte_handover(2.0, mode, file_size=2_000_000)
        res = run_mobility(sc, "mpquic")
        assert res.completed, f"mpquic did not survive mode={mode}"


class TestTimelineCacheIdentity:
    def _cell(self, tl, file_size=300_000):
        return SweepCell(
            paths=(WIFI_PATH, LTE_PATH),
            protocol="mpquic",
            initial_interface=0,
            file_size=file_size,
            repetitions=1,
            base_seed=1,
            timeout=45.0,
            timeline=tl,
        )

    def test_different_timelines_different_cache_keys(self):
        a = self._cell(timeline(blackhole(1.0, 0)))
        b = self._cell(timeline(blackhole(2.0, 0)))
        c = self._cell(None)
        keys = {a.cache_key(), b.cache_key(), c.cache_key()}
        assert len(keys) == 3

    def test_identical_timelines_identical_cache_keys(self):
        a = self._cell(timeline(blackhole(2.0, 0)))
        b = self._cell(timeline(blackhole(2.0, 0)))
        assert a.cache_key() == b.cache_key()

    def test_event_order_does_not_change_the_key(self):
        a = self._cell(timeline(blackhole(1.0, 0), blackhole(2.0, 1)))
        b = self._cell(timeline(blackhole(2.0, 1), blackhole(1.0, 0)))
        assert a.cache_key() == b.cache_key()

    def test_identical_timeline_hits_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = self._cell(timeline(blackhole(0.1, 0)))
        cold = SweepStats()
        first = execute_cells([cell], jobs=1, cache=cache, stats=cold)
        assert cold.cache_misses == 1 and cold.executed == 1
        warm = SweepStats()
        second = execute_cells(
            [self._cell(timeline(blackhole(0.1, 0)))],
            jobs=1, cache=cache, stats=warm,
        )
        assert warm.cache_hits == 1 and warm.executed == 0
        assert first[0].transfer_time == second[0].transfer_time

    def test_changed_timeline_misses_warm_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        execute_cells(
            [self._cell(timeline(blackhole(0.1, 0)))], jobs=1, cache=cache
        )
        stats = SweepStats()
        execute_cells(
            [self._cell(timeline(blackhole(0.2, 0)))],
            jobs=1, cache=cache, stats=stats,
        )
        assert stats.cache_hits == 0 and stats.executed == 1


def test_family_sweeps_the_failure_instant():
    family = wifi_to_lte_family((1.0, 2.0))
    assert [sc.timeline.events[0].time for sc in family] == [1.0, 2.0]
    assert len({sc.name for sc in family}) == 2
