"""E6 / Fig. 8 — high-BDP-losses: time-ratio CDFs.

Paper shape: QUIC performs better than TCP in high-BDP environments
with random losses (better loss signalling, fairer window evolution).
"""

from repro.experiments.figures import fig8
from repro.experiments.metrics import fraction_greater_than, median

from benchmarks.common import BENCH_CONFIG, run_once


def test_fig8_highbdp_lossy_ratio(benchmark):
    series = run_once(benchmark, lambda: fig8(BENCH_CONFIG))
    tcp_quic = series["tcp/quic"]
    # QUIC wins more often than it loses against TCP.
    assert fraction_greater_than(tcp_quic, 1.0) >= 0.4
    assert median(tcp_quic) > 0.85
