"""Streamed sweep telemetry: the JSONL sidecar and its invariants.

The load-bearing property: every sweep cell gets exactly one terminal
``cell`` record — cached, executed, or quarantined — so the sidecar's
cell count equals the sweep's cell count on every code path, including
crash-retry and quarantine.
"""

import json
import warnings

import pytest

from repro.expdesign.parameters import generate_scenarios
from repro.experiments.parallel import (
    ResultCache,
    SweepStats,
    SweepTelemetry,
    default_telemetry,
    execute_cells,
    plan_class_sweep,
)


def _cells(count=1, file_size=100_000):
    scenarios = generate_scenarios("low-bdp-no-loss", count, seed=42)
    return plan_class_sweep(scenarios, file_size, False)


def _records(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh]


def _cell_records(path):
    return [r for r in _records(path) if r["record"] == "cell"]


class TestSidecar:
    def test_one_terminal_record_per_cell(self, tmp_path):
        cells = _cells()[:4]
        sidecar = tmp_path / "telemetry.jsonl"
        telemetry = SweepTelemetry(sidecar, len(cells), jobs=1)
        results = execute_cells(
            cells, jobs=1, cache=None, telemetry=telemetry
        )
        assert all(r is not None for r in results)
        records = _records(sidecar)
        assert records[0]["record"] == "sweep_start"
        assert records[0]["cells"] == len(cells)
        assert records[-1]["record"] == "sweep_end"
        cell_records = _cell_records(sidecar)
        assert len(cell_records) == len(cells)
        assert sorted(r["index"] for r in cell_records) == list(
            range(len(cells))
        )
        for record in cell_records:
            assert record["status"] == "executed"
            assert record["wall_seconds"] > 0
            assert record["worker_pid"] > 0
            assert record["attempts"] == 1
            assert record["events"] > 0
            assert record["events_per_second"] > 0

    def test_cached_cells_get_cached_records(self, tmp_path):
        cells = _cells()[:4]
        cache = ResultCache(tmp_path / "cache")
        execute_cells(cells, jobs=1, cache=cache, telemetry=None)
        sidecar = tmp_path / "telemetry.jsonl"
        telemetry = SweepTelemetry(sidecar, len(cells), jobs=1)
        execute_cells(cells, jobs=1, cache=cache, telemetry=telemetry)
        cell_records = _cell_records(sidecar)
        assert len(cell_records) == len(cells)
        assert all(r["status"] == "cached" for r in cell_records)
        end = _records(sidecar)[-1]
        assert end["record"] == "sweep_end"
        assert end["cache_hits"] == len(cells)
        assert end["executed"] == 0

    def test_sweep_end_mirrors_stats(self, tmp_path):
        cells = _cells()[:3]
        sidecar = tmp_path / "telemetry.jsonl"
        stats = SweepStats()
        execute_cells(
            cells, jobs=1, cache=None, stats=stats,
            telemetry=SweepTelemetry(sidecar, len(cells), jobs=1),
        )
        end = _records(sidecar)[-1]
        assert end["executed"] == stats.executed == len(cells)
        assert end["events_processed"] == stats.events_processed
        assert end["wall_seconds"] > 0

    def test_append_mode_accumulates_sweeps(self, tmp_path):
        cells = _cells()[:2]
        sidecar = tmp_path / "telemetry.jsonl"
        for _ in range(2):
            execute_cells(
                cells, jobs=1, cache=None,
                telemetry=SweepTelemetry(sidecar, len(cells), jobs=1),
            )
        records = _records(sidecar)
        assert sum(r["record"] == "sweep_start" for r in records) == 2
        assert len(_cell_records(sidecar)) == 2 * len(cells)


class TestRetryAndQuarantine:
    def test_quarantined_cell_still_gets_one_terminal_record(
        self, tmp_path, monkeypatch
    ):
        cells = _cells()[:3]
        # Crash the middle cell on every attempt (no marker dir), in
        # process (jobs=1 + raise mode).
        monkeypatch.setenv(
            "REPRO_CHAOS_CRASH_KEY", cells[1].cache_key()[:16]
        )
        monkeypatch.setenv("REPRO_CHAOS_MODE", "raise")
        sidecar = tmp_path / "telemetry.jsonl"
        stats = SweepStats()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            results = execute_cells(
                cells, jobs=1, cache=None, stats=stats, retries=2,
                telemetry=SweepTelemetry(sidecar, len(cells), jobs=1),
            )
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        cell_records = _cell_records(sidecar)
        assert len(cell_records) == len(cells)
        by_index = {r["index"]: r for r in cell_records}
        assert by_index[1]["status"] == "quarantined"
        assert by_index[1]["attempts"] == 3
        assert "chaos drill" in by_index[1]["error"]
        failures = [
            r for r in _records(sidecar) if r["record"] == "attempt_failed"
        ]
        assert [f["attempt"] for f in failures] == [1, 2, 3]
        end = _records(sidecar)[-1]
        assert end["quarantined"] == 1
        assert end["retries"] == 2

    def test_recovered_cell_reports_its_attempts(self, tmp_path, monkeypatch):
        cells = _cells()[:2]
        marker_dir = tmp_path / "markers"
        monkeypatch.setenv(
            "REPRO_CHAOS_CRASH_KEY", cells[0].cache_key()[:16]
        )
        monkeypatch.setenv("REPRO_CHAOS_MODE", "raise")
        monkeypatch.setenv("REPRO_CHAOS_MARKER_DIR", str(marker_dir))
        sidecar = tmp_path / "telemetry.jsonl"
        results = execute_cells(
            cells, jobs=1, cache=None, retries=2,
            telemetry=SweepTelemetry(sidecar, len(cells), jobs=1),
        )
        assert all(r is not None for r in results)
        by_index = {r["index"]: r for r in _cell_records(sidecar)}
        assert by_index[0]["status"] == "executed"
        assert by_index[0]["attempts"] == 2  # crashed once, then recovered
        assert by_index[1]["attempts"] == 1


class TestEnvironmentWiring:
    def test_env_knob_creates_sidecar(self, tmp_path, monkeypatch):
        sidecar = tmp_path / "env_telemetry.jsonl"
        monkeypatch.setenv("REPRO_SWEEP_TELEMETRY", str(sidecar))
        telemetry = default_telemetry(total=5, jobs=2)
        assert telemetry is not None
        telemetry.close(SweepStats())
        records = _records(sidecar)
        assert records[0]["record"] == "sweep_start"
        assert records[0]["cells"] == 5

    def test_silent_without_env_or_tty(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_TELEMETRY", raising=False)
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        # pytest's captured stderr is not a tty, so: fully silent.
        assert default_telemetry(total=5, jobs=1) is None

    def test_progress_line_renders_eta(self, tmp_path):
        class FakeStream:
            def __init__(self):
                self.chunks = []

            def write(self, text):
                self.chunks.append(text)

            def flush(self):
                pass

        stream = FakeStream()
        cells = _cells()[:2]
        telemetry = SweepTelemetry(
            tmp_path / "t.jsonl", len(cells), jobs=1, stream=stream
        )
        execute_cells(cells, jobs=1, cache=None, telemetry=telemetry)
        text = "".join(stream.chunks)
        assert f"[{len(cells)}/{len(cells)}]" in text
        assert "eta=" in text
        assert text.endswith("\n")  # final line is terminated


class TestResultEquivalence:
    def test_telemetry_does_not_change_results(self, tmp_path):
        cells = _cells()[:4]
        with_telemetry = execute_cells(
            cells, jobs=1, cache=None,
            telemetry=SweepTelemetry(tmp_path / "t.jsonl", len(cells), 1),
        )
        without = execute_cells(cells, jobs=1, cache=None, telemetry=None)
        assert [
            (r.transfer_time, r.goodput_bps) for r in with_telemetry
        ] == [(r.transfer_time, r.goodput_bps) for r in without]


class TestLineAtomicAppends:
    def test_threads_hammering_one_sidecar_never_interleave(self, tmp_path):
        # Concurrent writers sharing one sidecar (the distributed
        # sweep's workers, or threads here) must never interleave
        # partial lines: each record is a single os.write on an
        # O_APPEND descriptor.  Long, distinctive payloads make any
        # torn or spliced line fail json parsing or the echo check.
        import threading

        sidecar = tmp_path / "telemetry.jsonl"
        telemetry = SweepTelemetry(sidecar, total=0, jobs=1)
        n_threads, per_thread = 8, 150

        def hammer(thread_no):
            payload = f"t{thread_no}-" + "x" * (400 + 37 * thread_no)
            for i in range(per_thread):
                telemetry.attempt_failed(
                    thread_no * per_thread + i, 1, payload
                )

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        telemetry.close(SweepStats())

        records = _records(sidecar)  # json.loads raises on a torn line
        failed = [r for r in records if r["record"] == "attempt_failed"]
        assert len(failed) == n_threads * per_thread
        assert sorted(r["index"] for r in failed) == list(
            range(n_threads * per_thread)
        )
        for r in failed:
            thread_no = int(r["error"].split("-", 1)[0][1:])
            assert r["error"] == (
                f"t{thread_no}-" + "x" * (400 + 37 * thread_no)
            )
