#!/usr/bin/env python3
"""Why MPQUIC uses OLIA: fairness at shared bottlenecks (paper §3).

An MPQUIC connection opens two paths that — unknown to it — traverse
the same 20 Mbps bottleneck, where it competes with a regular
single-path QUIC download.  With uncoupled per-path CUBIC the
multipath connection behaves like two flows and squeezes the
competitor; coupled OLIA backs off across its paths jointly and takes
roughly one fair share.

Run:  python examples/bottleneck_fairness.py
"""

from repro.experiments.fairness import DEFAULT_BOTTLENECK, run_fairness


def main() -> None:
    print(
        f"Bottleneck: {DEFAULT_BOTTLENECK.capacity_mbps:.0f} Mbps, "
        f"{DEFAULT_BOTTLENECK.rtt_ms:.0f} ms RTT\n"
    )
    print(f"{'multipath CC':14s} {'MPQUIC':>10s} {'competitor':>11s} {'share':>7s}")
    for cc in ("olia", "cubic2", "newreno"):
        r = run_fairness(multipath_cc=cc, duration=15.0)
        print(
            f"{cc:14s} {r.mp_goodput_bps / 1e6:7.2f} Mb {r.competitor_goodput_bps / 1e6:8.2f} Mb "
            f"{r.mp_share:7.2f}"
        )
    print(
        "\nshare = fraction of delivered bytes the 2-path MPQUIC flow took"
        "\n(0.50 = perfectly fair against the one single-path competitor)."
    )


if __name__ == "__main__":
    main()
