"""The cProfile harness: hot reports and collapsed stacks."""

import pstats

from repro.obs import profile as obs_profile


def _busy():
    total = 0
    for i in range(20_000):
        total += _square(i)
    return total


def _square(x):
    return x * x


class TestProfileCallable:
    def test_returns_stats_with_recorded_calls(self):
        stats = obs_profile.profile_callable(_busy)
        assert isinstance(stats, pstats.Stats)
        names = {func[2] for func in stats.stats}
        assert "_busy" in names and "_square" in names

    def test_hot_report_mentions_hot_function(self):
        stats = obs_profile.profile_callable(_busy)
        report = obs_profile.hot_report(stats, limit=10, sort="tottime")
        assert "_square" in report
        assert "ncalls" in report


class TestCollapsedStacks:
    def test_caller_callee_lines_with_positive_counts(self):
        stats = obs_profile.profile_callable(_busy)
        lines = obs_profile.collapsed_stacks(stats)
        assert lines, "expected at least one collapsed stack"
        for line in lines:
            frames, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert 1 <= len(frames.split(";")) <= 2
        assert any("_busy" in line and "_square" in line for line in lines)

    def test_write_collapsed(self, tmp_path):
        stats = obs_profile.profile_callable(_busy)
        target = tmp_path / "stacks.collapsed"
        count = obs_profile.write_collapsed(stats, str(target))
        assert count == len(target.read_text().splitlines())


class TestCli:
    def test_list_scenarios(self, capsys):
        assert obs_profile.main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(obs_profile.SCENARIOS) == set(out)

    def test_unknown_scenario_exits_two(self, capsys):
        assert obs_profile.main(["no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_profiles_handover_and_writes_artifacts(self, tmp_path, capsys):
        prof = tmp_path / "handover.prof"
        collapsed = tmp_path / "handover.collapsed"
        code = obs_profile.main(
            [
                "handover", "--limit", "5", "--sort", "tottime",
                "--output", str(prof), "--collapsed", str(collapsed),
            ]
        )
        assert code == 0
        assert prof.exists() and collapsed.exists()
        out = capsys.readouterr().out
        assert "function calls" in out
        # Simulation hot paths, not import machinery, top the report.
        assert "repro/" in out
