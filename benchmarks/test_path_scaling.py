"""A8 — MPQUIC aggregation as the number of disjoint paths grows.

The paper evaluates two paths; the design (explicit Path IDs, per-path
number spaces) supports any count.  Transfer time should shrink
monotonically-ish as equal-capacity paths are added, with diminishing
returns from OLIA's coupled growth.
"""

from repro.experiments.runner import run_bulk
from repro.netsim.topology import PathConfig

from benchmarks.common import run_once

PATH = PathConfig(capacity_mbps=8.0, rtt_ms=40.0, queuing_delay_ms=60.0)
SIZE = 4_000_000


def test_aggregation_scales_with_path_count(benchmark):
    def run():
        times = {}
        for n in (1, 2, 3, 4):
            protocol = "quic" if n == 1 else "mpquic"
            times[n] = run_bulk(protocol, [PATH] * n, SIZE).transfer_time
        return times

    times = run_once(benchmark, run)
    print("\npaths -> time: " + ", ".join(
        f"{n}: {t:.2f}s" for n, t in sorted(times.items())
    ))
    # Two paths clearly beat one; more paths never hurt much.
    assert times[2] < times[1] * 0.75
    assert times[3] <= times[2] * 1.1
    assert times[4] <= times[3] * 1.1
    # And four paths beat one by a wide margin.
    assert times[4] < times[1] * 0.55
