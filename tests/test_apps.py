"""Tests for the application layer and the protocol-agnostic transport."""

import pytest

from repro.apps.bulk import BulkTransferApp
from repro.apps.reqres import RequestResponseApp
from repro.apps.transport import PROTOCOLS, make_client_server
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology

from tests.helpers import TWO_CLEAN_PATHS


def make_env(protocol, paths=None, seed=1):
    sim = Simulator()
    topo = TwoPathTopology(sim, paths or TWO_CLEAN_PATHS, seed=seed)
    client, server = make_client_server(protocol, sim, topo)
    return sim, topo, client, server


class TestTransportFacade:
    def test_unknown_protocol_rejected(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, TWO_CLEAN_PATHS)
        with pytest.raises(ValueError):
            make_client_server("sctp", sim, topo)

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_echo_roundtrip(self, protocol):
        sim, topo, client, server = make_env(protocol)
        got = {}
        state = {}

        def on_server(data, fin):
            if "seen" not in state:
                state["seen"] = True
                server.send(b"pong", fin=False)

        def on_client(data, fin):
            got.setdefault("data", bytearray()).extend(data)

        server.on_data = on_server
        client.on_data = on_client
        client.on_established = lambda: client.send(b"ping")
        client.connect()
        sim.run(until=5.0)
        assert bytes(got["data"]) == b"pong"

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_established_flag(self, protocol):
        sim, topo, client, server = make_env(protocol)
        assert not client.established
        client.connect()
        sim.run(until=2.0)
        assert client.established


class TestBulkApp:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_measures_from_first_packet(self, protocol):
        sim, topo, client, server = make_env(protocol)
        app = BulkTransferApp(sim, client, server, file_size=100_000)
        assert app.run()
        assert app.bytes_received == 100_000
        # Transfer time includes the handshake; QUIC < TCP.
        assert app.transfer_time > 0.04  # at least one RTT

    def test_goodput_property(self):
        sim, topo, client, server = make_env("quic")
        app = BulkTransferApp(sim, client, server, file_size=1_000_000)
        assert app.run()
        assert app.goodput_bps == pytest.approx(
            1_000_000 * 8 / app.transfer_time
        )

    def test_transfer_time_before_completion_raises(self):
        sim, topo, client, server = make_env("quic")
        app = BulkTransferApp(sim, client, server, file_size=1000)
        with pytest.raises(RuntimeError):
            _ = app.transfer_time

    def test_handshake_difference_visible_in_short_transfers(self):
        """QUIC's 1-RTT vs HTTPS's 3-RTT handshake (paper §4.2)."""
        times = {}
        for protocol in ("quic", "tcp"):
            sim, topo, client, server = make_env(protocol)
            app = BulkTransferApp(sim, client, server, file_size=20_000)
            assert app.run()
            times[protocol] = app.transfer_time
        assert times["tcp"] > times["quic"] + 0.05  # ~2 extra RTTs at 40ms


class TestReqResApp:
    def test_all_requests_answered(self):
        sim, topo, client, server = make_env("mpquic")
        app = RequestResponseApp(
            sim, client, server, message_size=750, interval=0.1,
            total_requests=10,
        )
        assert app.run()
        assert len(app.samples) == 10

    def test_delays_reflect_rtt(self):
        sim, topo, client, server = make_env(
            "mpquic", paths=[PathConfig(10, 30, 50), PathConfig(10, 80, 50)]
        )
        app = RequestResponseApp(
            sim, client, server, message_size=750, interval=0.2,
            total_requests=8,
        )
        assert app.run()
        delays = [d for _, d in app.delays()]
        # Steady state rides the 30 ms path.
        assert min(delays) < 0.045

    def test_message_size_validation(self):
        sim, topo, client, server = make_env("mpquic")
        with pytest.raises(ValueError):
            RequestResponseApp(sim, client, server, message_size=4)

    def test_works_over_tcp_framing(self):
        sim, topo, client, server = make_env("tcp")
        app = RequestResponseApp(
            sim, client, server, message_size=300, interval=0.05,
            total_requests=6,
        )
        assert app.run()
        assert len(app.samples) == 6
