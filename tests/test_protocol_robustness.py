"""Robustness tests: protocol violations and adversarial inputs must
close connections cleanly, never crash the simulation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.engine import Simulator
from repro.netsim.node import Datagram
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection
from repro.quic.frames import StreamFrame
from repro.quic.packet import Packet, UDP_IP_OVERHEAD
from repro.util import sanitize


def make_pair():
    sim = Simulator()
    topo = TwoPathTopology(sim, [PathConfig(10, 40, 50)], seed=1)
    client = QuicConnection(sim, topo.client, "client", QuicConfig())
    server = QuicConnection(sim, topo.server, "server", QuicConfig())
    client.connect()
    sim.run(until=0.5)
    assert client.established
    return sim, topo, client, server


class TestFlowControlViolation:
    def test_peer_overrun_closes_connection(self):
        sim, topo, client, server = make_pair()
        # Inject a stream frame far beyond any advertised window.
        huge_offset = server.config.max_stream_window + 10**7
        frame = StreamFrame(1, huge_offset, b"x" * 100, False)
        packet = Packet(0, 999_999, (frame,), multipath=False)
        server.datagram_received(
            Datagram(payload=packet, size=packet.wire_size + UDP_IP_OVERHEAD), 0
        )
        assert server.closed  # closed, not crashed

    def test_connection_level_overrun_also_closes(self):
        sim, topo, client, server = make_pair()
        beyond = server.config.max_connection_window + 10**7
        frame = StreamFrame(3, beyond, b"y" * 10, False)
        packet = Packet(0, 999_998, (frame,), multipath=False)
        server.datagram_received(
            Datagram(payload=packet, size=packet.wire_size + UDP_IP_OVERHEAD), 0
        )
        assert server.closed


class TestAdversarialPacketNumbers:
    # These tests inject wire-level protocol violations from a
    # synthetic hostile peer; the runtime sanitizer (REPRO_SANITIZE=1)
    # asserts the *absence* of exactly these violations in our own
    # machinery, so it is scoped off while the bogus packets fly.

    def test_duplicate_packet_number_ignored_gracefully(self):
        sim, topo, client, server = make_pair()
        frame = StreamFrame(1, 0, b"dup", False)
        packet = Packet(0, 5000, (frame,), multipath=False)
        dgram = Datagram(payload=packet, size=packet.wire_size + UDP_IP_OVERHEAD)
        with sanitize.enabled(False):
            server.datagram_received(dgram, 0)
            server.datagram_received(dgram, 0)  # exact duplicate
            sim.run(until=1.0)
        assert not server.closed

    def test_ack_for_unknown_path_ignored(self):
        from repro.quic.frames import AckFrame

        sim, topo, client, server = make_pair()
        ack = AckFrame(path_id=7, largest_acked=3, ack_delay=0.0,
                       ranges=((0, 4),))
        packet = Packet(0, 6000, (ack,), multipath=False)
        server.datagram_received(
            Datagram(payload=packet, size=packet.wire_size + UDP_IP_OVERHEAD), 0
        )
        assert not server.closed

    def test_ack_for_never_sent_packets_ignored(self):
        from repro.quic.frames import AckFrame

        sim, topo, client, server = make_pair()
        ack = AckFrame(path_id=0, largest_acked=10**6, ack_delay=0.0,
                       ranges=((10**6 - 5, 10**6 + 1),))
        packet = Packet(0, 6001, (ack,), multipath=False)
        with sanitize.enabled(False):
            server.datagram_received(
                Datagram(payload=packet, size=packet.wire_size + UDP_IP_OVERHEAD), 0
            )
            sim.run(until=1.0)
        assert not server.closed


class TestCodecRobustness:
    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=100)
    def test_decode_garbage_never_hangs(self, blob):
        """Decoding random bytes raises or returns — never loops."""
        from repro.quic.packet import Packet as P

        try:
            P.decode(blob)
        except Exception:
            pass  # any parse error is acceptable; hangs/corruption are not
