"""Multipath QUIC — the paper's contribution.

Extends :class:`repro.quic.QuicConnection` with:

* explicit **Path IDs** in the public header and per-path packet-number
  spaces (paper §3, *Path Identification* / *Reliable Data
  Transmission*);
* a **path manager** that opens one path per client interface as soon
  as the 1-RTT handshake completes — data may ride the very first
  packet of a new path, unlike MPTCP's per-subflow 3-way handshake
  (*Path Management*);
* a **packet scheduler** preferring the lowest-RTT path with congestion
  window space, duplicating traffic onto paths whose RTT is still
  unknown (*Packet Scheduling*);
* the **OLIA** coupled congestion controller (*Congestion Control*);
* **PATHS** / **ADD_ADDRESS** frames for path visibility and fast
  handover (§4.3).
"""

from repro.core.connection import MultipathQuicConnection
from repro.core.path_manager import PathManager
from repro.core.scheduler import (
    LowestRttScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
    Scheduler,
    SinglePathScheduler,
    make_scheduler,
)

__all__ = [
    "MultipathQuicConnection",
    "PathManager",
    "Scheduler",
    "LowestRttScheduler",
    "RoundRobinScheduler",
    "RedundantScheduler",
    "SinglePathScheduler",
    "make_scheduler",
]
