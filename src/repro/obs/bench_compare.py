"""Compare two ``BENCH_*.json`` records and gate on throughput loss.

Usage::

    python -m repro.obs.bench_compare BASELINE.json CANDIDATE.json \
        [--metric event_loop] [--threshold 0.30] [--warn-only]

Extracts the headline events/sec from each record (top-level
``events_per_second``; falls back to ``serial.events_per_second`` for
``BENCH_sweep.json`` and ``event_loop.events_per_second`` for older
engine records), prints the delta, and exits

* ``0`` when the candidate is within ``threshold`` of the baseline
  (or faster),
* ``1`` on a regression past the threshold (``0`` with ``--warn-only``,
  for hosts whose timings are too noisy to hard-fail on), and
* ``2`` when either record is unreadable or carries no throughput
  number.

``--metric NAME`` gates one sub-benchmark (``NAME.events_per_second``)
instead of the headline, so CI can enforce the stable microbenches
(``event_loop``, ``timer_churn``) while keeping noisier end-to-end
numbers warn-only.  Parallel-derived metrics (anything under
``parallel``) are skipped — exit 0 with an annotation — when either
record was produced on a single-core host, where "speedup" only
measures process-pool overhead.

The default threshold is deliberately loose (30%): shared CI runners
jitter by tens of percent, and the gate exists to catch structural
regressions (an accidentally quadratic hot path), not 5% noise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Optional, Sequence

#: Default maximum tolerated fractional slowdown (0.30 = 30% fewer
#: events/sec than the baseline).
DEFAULT_THRESHOLD = 0.30

#: Where a record may keep its headline throughput, probed in order.
_EPS_PATHS = (
    ("events_per_second",),
    ("serial", "events_per_second"),
    ("event_loop", "events_per_second"),
)


def extract_events_per_second(
    record: Dict[str, Any], metric: Optional[str] = None
) -> Optional[float]:
    """The record's headline (or ``metric``'s) events/sec, or None."""
    paths = (
        ((metric, "events_per_second"),) if metric is not None else _EPS_PATHS
    )
    for path in paths:
        node: Any = record
        for key in path:
            if not isinstance(node, dict) or key not in node:
                node = None
                break
            node = node[key]
        if isinstance(node, (int, float)) and node > 0:
            return float(node)
    return None


def _cpu_count(record: Dict[str, Any]) -> Optional[int]:
    host = record.get("host")
    if isinstance(host, dict) and isinstance(host.get("cpu_count"), int):
        return host["cpu_count"]
    return None


def compare(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    metric: Optional[str] = None,
) -> Dict[str, Any]:
    """Structured comparison; raises ValueError on missing numbers.

    Parallel-derived metrics are meaningless on single-core hosts
    (they time process-pool overhead); for those the result carries a
    ``skipped`` reason instead of regression math.
    """
    if metric is not None and "parallel" in metric:
        cores = [
            c for c in (_cpu_count(baseline), _cpu_count(candidate))
            if c is not None
        ]
        if cores and min(cores) <= 1:
            return {
                "skipped": (
                    f"metric {metric!r} compares parallel timings but a "
                    "record came from a single-core host; speedup there "
                    "measures pool overhead, not parallelism"
                ),
                "regression": False,
            }
    base_eps = extract_events_per_second(baseline, metric)
    cand_eps = extract_events_per_second(candidate, metric)
    where = f" under {metric!r}" if metric is not None else ""
    if base_eps is None:
        raise ValueError(f"baseline record carries no events/sec{where}")
    if cand_eps is None:
        raise ValueError(f"candidate record carries no events/sec{where}")
    change = (cand_eps - base_eps) / base_eps
    return {
        "baseline_events_per_second": base_eps,
        "candidate_events_per_second": cand_eps,
        "change": change,
        "threshold": threshold,
        "regression": change < -threshold,
    }


def _load(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return data


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench_compare", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="max tolerated fractional slowdown (default %(default)s)",
    )
    parser.add_argument(
        "--warn-only", action="store_true",
        help="report a regression but exit 0 (noisy hosts)",
    )
    parser.add_argument(
        "--metric", default=None,
        help="gate METRIC.events_per_second instead of the headline "
        "(e.g. event_loop, timer_churn, mpquic_transfer)",
    )
    args = parser.parse_args(argv)

    try:
        result = compare(
            _load(args.baseline), _load(args.candidate), args.threshold,
            metric=args.metric,
        )
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"bench_compare: {exc}", file=sys.stderr)
        return 2

    if "skipped" in result:
        print(f"SKIPPED: {result['skipped']}")
        return 0

    pct = result["change"] * 100.0
    direction = "faster" if result["change"] >= 0 else "slower"
    if args.metric is not None:
        print(f"metric:    {args.metric}.events_per_second")
    print(
        f"baseline:  {result['baseline_events_per_second']:>12.0f} events/s"
    )
    print(
        f"candidate: {result['candidate_events_per_second']:>12.0f} events/s"
    )
    print(
        f"change:    {pct:+.1f}% ({direction}; threshold "
        f"-{args.threshold * 100:.0f}%)"
    )
    if result["regression"]:
        print(
            f"REGRESSION: candidate is {-pct:.1f}% slower than baseline",
            file=sys.stderr,
        )
        return 0 if args.warn_only else 1
    print("OK: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
