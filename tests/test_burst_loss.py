"""Tests for the Gilbert-Elliott burst-loss model."""

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.link import GilbertElliottLoss
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.netsim.engine import Simulator

from tests.helpers import run_transfer


class TestGilbertElliott:
    def test_average_rate_matches(self):
        ge = GilbertElliottLoss(0.02, mean_burst=5.0, rng=random.Random(1))
        n = 100_000
        rate = sum(ge.lose() for _ in range(n)) / n
        assert rate == pytest.approx(0.02, rel=0.2)

    def test_mean_burst_length_matches(self):
        ge = GilbertElliottLoss(0.03, mean_burst=6.0, rng=random.Random(2))
        losses = [ge.lose() for _ in range(200_000)]
        bursts, cur = [], 0
        for lost in losses:
            if lost:
                cur += 1
            elif cur:
                bursts.append(cur)
                cur = 0
        assert statistics.mean(bursts) == pytest.approx(6.0, rel=0.25)

    def test_burstier_than_bernoulli(self):
        ge = GilbertElliottLoss(0.02, mean_burst=8.0, rng=random.Random(3))
        losses = [ge.lose() for _ in range(100_000)]
        # Count loss-after-loss transitions: far above the 2% that
        # independent losses would give.
        pairs = sum(1 for a, b in zip(losses, losses[1:]) if a and b)
        loss_count = sum(losses)
        assert pairs / max(loss_count, 1) > 0.3

    @given(
        st.floats(0.005, 0.1), st.floats(1.0, 20.0), st.integers(0, 100)
    )
    @settings(max_examples=30)
    def test_rate_property(self, rate, burst, seed):
        ge = GilbertElliottLoss(rate, mean_burst=burst, rng=random.Random(seed))
        n = 50_000
        observed = sum(ge.lose() for _ in range(n)) / n
        assert observed == pytest.approx(rate, rel=0.5, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.0)
        with pytest.raises(ValueError):
            GilbertElliottLoss(0.5, mean_burst=0.5)


class TestBurstLossTransfers:
    PATHS = [
        PathConfig(10, 40, 50, loss_percent=2.0, loss_burst=6.0),
        PathConfig(10, 40, 50, loss_percent=2.0, loss_burst=6.0),
    ]

    @pytest.mark.parametrize("protocol", ["tcp", "quic", "mptcp", "mpquic"])
    def test_reliability_under_bursts(self, protocol):
        result = run_transfer(
            protocol, self.PATHS, file_size=300_000, timeout=3000.0
        )
        assert result.ok
        assert result.app.bytes_received == 300_000

    def test_handover_override_clears_burst_model(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, self.PATHS, seed=1)
        topo.set_path_loss(0, 100.0)
        assert topo.forward_links[0].burst_loss is None
        assert topo.forward_links[0].loss_rate == 1.0
