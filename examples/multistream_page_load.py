#!/usr/bin/env python3
"""Stream multiplexing prevents head-of-line blocking (paper §1/§2).

QUIC "supports different streams that prevent head-of-line blocking
when downloading different objects from a single server".  This example
loads a small web page (one HTML document plus several objects) over a
lossy path twice:

* as **one** stream (HTTP/1.1-over-TCP style: a lost packet stalls
  every object behind it), and
* as **one stream per object** (HTTP/2-over-QUIC style: a loss only
  stalls the affected object).

It reports when each object completes and the resulting page load time.

Run:  python examples/multistream_page_load.py
"""

from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection

#: One HTML page plus five objects of varying sizes.
OBJECTS = [60_000, 120_000, 40_000, 200_000, 80_000, 30_000]
PATH = PathConfig(capacity_mbps=8.0, rtt_ms=40.0, queuing_delay_ms=60.0,
                  loss_percent=2.0)


def load_page(multiplexed: bool, seed: int = 5):
    sim = Simulator()
    topo = TwoPathTopology(sim, [PATH], seed=seed)
    client = QuicConnection(sim, topo.client, "client", QuicConfig())
    server = QuicConnection(sim, topo.server, "server", QuicConfig())
    completion = {}
    served = {}

    def on_server_data(sid, data, fin):
        if sid in served or not data:
            return
        served[sid] = True
        if multiplexed:
            index = (sid - 1) // 2  # client streams are odd: 1, 3, 5...
            server.send_stream_data(sid, b"o" * OBJECTS[index], fin=True)
        else:
            blob = b"".join(b"o" * size for size in OBJECTS)
            server.send_stream_data(sid, blob, fin=True)

    server.on_stream_data = on_server_data
    progress = {"got": 0, "boundaries": []}
    if not multiplexed:
        acc = 0
        for size in OBJECTS:
            acc += size
            progress["boundaries"].append(acc)

    def on_client_data(sid, data, fin):
        if multiplexed:
            if fin:
                completion[sid] = sim.now
        else:
            progress["got"] += len(data)
            while (
                progress["boundaries"]
                and progress["got"] >= progress["boundaries"][0]
            ):
                progress["boundaries"].pop(0)
                completion[len(completion) + 1] = sim.now

    client.on_stream_data = on_client_data

    def go():
        if multiplexed:
            for _ in OBJECTS:
                sid = client.open_stream()
                client.send_stream_data(sid, b"GET /obj", fin=True)
        else:
            sid = client.open_stream()
            client.send_stream_data(sid, b"GET /page", fin=True)

    client.on_established = go
    client.connect()
    sim.run_until(lambda: len(completion) >= len(OBJECTS), timeout=120.0)
    return sorted(completion.values())


def main() -> None:
    single = load_page(multiplexed=False)
    multi = load_page(multiplexed=True)
    print(f"Page: {len(OBJECTS)} objects, {sum(OBJECTS) / 1e3:.0f} KB total, "
          f"{PATH.capacity_mbps:.0f} Mbps / {PATH.rtt_ms:.0f} ms / "
          f"{PATH.loss_percent}% loss\n")
    print(f"{'object #':>9s} {'1 stream':>10s} {'multiplexed':>12s}")
    for i, (a, b) in enumerate(zip(single, multi)):
        print(f"{i + 1:9d} {a:9.2f}s {b:11.2f}s")
    print(f"\nFirst object usable: {single[0]:.2f}s vs {multi[0]:.2f}s")
    print(f"Full page load:      {single[-1]:.2f}s vs {multi[-1]:.2f}s")


if __name__ == "__main__":
    main()
