"""Parallel sweep execution engine with a persistent result cache.

The paper's evaluation is embarrassingly parallel: each class sweep is
a grid of independent, deterministic simulations — one cell per
``(scenario, protocol, initial_interface)``, carrying its own seed.
This module decomposes a sweep into :class:`SweepCell` work units, fans
them out over a ``ProcessPoolExecutor`` and memoises finished cells in
a content-addressed on-disk cache, so regenerating figures or
benchmarks at a scale that was already run is a pure cache hit.

Guarantees:

* **Bit-identical results.**  A cell is executed by the very same
  :func:`repro.experiments.runner.run_bulk` call the serial path makes,
  with the same seeds and the same median selection; only the order of
  execution changes, and results are re-assembled in cell order.
* **Content-addressed caching.**  The cache key hashes everything that
  determines a run's outcome: the scenario's path parameters, the file
  size, protocol and initial interface, repetitions and base seed, the
  full QUIC/TCP endpoint configs, and a results-format version bumped
  whenever the stored schema (or simulation semantics) changes.

Environment knobs (also surfaced as ``--jobs`` / ``--no-cache`` on the
``repro.experiments.figures`` CLI):

* ``REPRO_JOBS``  — worker processes (default ``os.cpu_count()``;
  ``1`` forces in-process serial execution).
* ``REPRO_CACHE`` — ``off``/``0``/``false`` disables the on-disk cache.
* ``REPRO_CACHE_DIR`` — cache root (default ``results/cache``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.expdesign.parameters import Scenario
from repro.experiments.runner import (
    DEFAULT_SIM_TIMEOUT,
    BulkRunResult,
    run_bulk,
)
from repro.netsim.faults import FaultTimeline
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig

#: Bump when the cached result schema or the simulation semantics
#: change, invalidating every previously stored result.
#: v2: fault timelines became part of a cell's identity.
RESULTS_FORMAT_VERSION = 2

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join("results", "cache")

#: Protocol matrix of the paper's sweep (§4.1).
SWEEP_PROTOCOLS = ("tcp", "quic", "mptcp", "mpquic")


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepCell:
    """One independent simulation unit of a class sweep.

    Everything needed to reproduce the run (and to address its cached
    result) lives here; cells are picklable and cheap to ship to worker
    processes.
    """

    paths: Tuple[PathConfig, ...]
    protocol: str
    initial_interface: int
    file_size: int
    repetitions: int
    base_seed: int
    timeout: float = DEFAULT_SIM_TIMEOUT
    quic_config: Optional[QuicConfig] = None
    tcp_config: Optional[TcpConfig] = None
    #: Network dynamics injected into every repetition; part of the
    #: cell's identity, so the same static scenario under different
    #: fault timelines never collides in the cache.
    timeline: Optional[FaultTimeline] = None

    def key_material(self) -> Dict:
        """The canonical dict whose hash addresses this cell's result."""
        return {
            "format": RESULTS_FORMAT_VERSION,
            "paths": [asdict(p) for p in self.paths],
            "protocol": self.protocol,
            "initial_interface": self.initial_interface,
            "file_size": self.file_size,
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
            "timeout": self.timeout,
            "quic_config": asdict(self.quic_config) if self.quic_config else None,
            "tcp_config": asdict(self.tcp_config) if self.tcp_config else None,
            "timeline": (
                self.timeline.key_material() if self.timeline else None
            ),
        }

    def cache_key(self) -> str:
        canonical = json.dumps(self.key_material(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()


def plan_class_sweep(
    scenarios: Sequence[Scenario],
    file_size: int,
    lossy: bool,
    protocols: Sequence[str] = SWEEP_PROTOCOLS,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
) -> List[SweepCell]:
    """Decompose a class sweep into cells, in deterministic order.

    The order (scenario-major, then protocol, then initial interface)
    matches the serial loop in the figure harness, so zipping the
    results back against this plan reproduces the serial structure.
    """
    reps = 3 if lossy else 1
    cells: List[SweepCell] = []
    for scenario in scenarios:
        for protocol in protocols:
            for initial in (0, 1):
                cells.append(
                    SweepCell(
                        paths=tuple(scenario.paths),
                        protocol=protocol,
                        initial_interface=initial,
                        file_size=file_size,
                        repetitions=reps,
                        base_seed=scenario.index + 1,
                        quic_config=quic_config,
                        tcp_config=tcp_config,
                    )
                )
    return cells


def run_cell(cell: SweepCell) -> BulkRunResult:
    """Execute one cell — the worker entry point (must be picklable)."""
    return run_bulk(
        cell.protocol,
        cell.paths,
        cell.file_size,
        initial_interface=cell.initial_interface,
        repetitions=cell.repetitions,
        base_seed=cell.base_seed,
        quic_config=cell.quic_config,
        tcp_config=cell.tcp_config,
        timeout=cell.timeout,
        timeline=cell.timeline,
    )


# ----------------------------------------------------------------------
# Result (de)serialisation
# ----------------------------------------------------------------------

def result_to_dict(result: BulkRunResult) -> Dict:
    """JSON-serialisable form of a result (traces are not cached)."""
    return {
        "protocol": result.protocol,
        "initial_interface": result.initial_interface,
        "file_size": result.file_size,
        "transfer_time": result.transfer_time,
        "goodput_bps": result.goodput_bps,
        "completed": result.completed,
        "repetitions": result.repetitions,
        "details": dict(result.details),
        "rep_times": list(result.rep_times),
        "rep_completed": list(result.rep_completed),
        "failed_repetitions": result.failed_repetitions,
    }


def result_from_dict(data: Dict) -> BulkRunResult:
    return BulkRunResult(
        protocol=data["protocol"],
        initial_interface=data["initial_interface"],
        file_size=data["file_size"],
        transfer_time=data["transfer_time"],
        goodput_bps=data["goodput_bps"],
        completed=data["completed"],
        repetitions=data["repetitions"],
        details=dict(data.get("details", {})),
        rep_times=list(data.get("rep_times", [])),
        rep_completed=list(data.get("rep_completed", [])),
        failed_repetitions=data.get("failed_repetitions", 0),
    )


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------

class ResultCache:
    """Content-addressed store of finished cells under ``root``.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the
    SHA-256 of the cell's canonical key material; each file stores the
    key material alongside the result so entries are self-describing.
    Writes go through a temp file + rename, so concurrent writers (or
    an interrupted run) never leave a truncated entry behind.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, cell: SweepCell) -> Optional[BulkRunResult]:
        path = self._path(cell.cache_key())
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return result_from_dict(data["result"])

    def put(self, cell: SweepCell, result: BulkRunResult) -> None:
        key = cell.cache_key()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key_material": cell.key_material(),
                   "result": result_to_dict(result)}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def cache_enabled() -> bool:
    """Whether ``REPRO_CACHE`` permits the on-disk cache."""
    return os.environ.get("REPRO_CACHE", "on").lower() not in (
        "off", "0", "false", "no"
    )


def default_cache() -> Optional[ResultCache]:
    """The cache configured by the environment, or None if disabled."""
    if not cache_enabled():
        return None
    return ResultCache(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is not None:
        return max(1, jobs)
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

@dataclass
class SweepStats:
    """Accounting of one :func:`execute_cells` invocation."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    jobs: int = 1
    #: Sum of simulator events over executed (non-cached) cells.
    events_processed: int = 0

    def merge(self, other: "SweepStats") -> None:
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.executed += other.executed
        self.events_processed += other.events_processed
        self.jobs = max(self.jobs, other.jobs)


#: Stats of the most recent :func:`execute_cells` call (observability
#: convenience for benchmarks and the CLI; also available by passing
#: ``stats=`` explicitly).
last_stats = SweepStats()


def execute_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = "auto",  # type: ignore[assignment]
    stats: Optional[SweepStats] = None,
) -> List[BulkRunResult]:
    """Run every cell, returning results aligned with ``cells``.

    Cached cells are served from disk; the rest are executed — in a
    worker pool when ``jobs > 1``, in-process otherwise — and stored
    back.  Results are bit-identical to running each cell serially:
    each worker performs the exact same ``run_bulk`` call, and ordering
    is restored from the plan, not from completion order.

    ``cache="auto"`` resolves via :func:`default_cache` (honouring
    ``REPRO_CACHE``); pass ``None`` to bypass caching explicitly.
    """
    global last_stats
    if cache == "auto":
        cache = default_cache()
    jobs = resolve_jobs(jobs)
    stats = stats if stats is not None else SweepStats()
    stats.cells += len(cells)
    stats.jobs = max(stats.jobs, jobs)

    results: List[Optional[BulkRunResult]] = [None] * len(cells)
    missing: List[int] = []
    for i, cell in enumerate(cells):
        cached = cache.get(cell) if cache is not None else None
        if cached is not None:
            results[i] = cached
        else:
            missing.append(i)
    if cache is not None:
        stats.cache_hits += len(cells) - len(missing)
        stats.cache_misses += len(missing)

    if missing:
        todo = [cells[i] for i in missing]
        if jobs > 1 and len(todo) > 1:
            fresh = _run_pool(todo, jobs)
        else:
            fresh = [run_cell(cell) for cell in todo]
        for i, result in zip(missing, fresh):
            results[i] = result
            if cache is not None:
                cache.put(cells[i], result)
        stats.executed += len(todo)
        stats.events_processed += sum(
            int(r.details.get("sim_events", 0)) for r in fresh
        )

    return results  # type: ignore[return-value]


def _run_pool(cells: Sequence[SweepCell], jobs: int) -> List[BulkRunResult]:
    """Fan cells out over a process pool; fall back to serial if the
    platform refuses to fork (restricted sandboxes)."""
    chunksize = max(1, len(cells) // (jobs * 4))
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            return list(pool.map(run_cell, cells, chunksize=chunksize))
    except (OSError, PermissionError):
        return [run_cell(cell) for cell in cells]


def execute_class_sweep(
    scenarios: Sequence[Scenario],
    file_size: int,
    lossy: bool,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = "auto",  # type: ignore[assignment]
    stats: Optional[SweepStats] = None,
    protocols: Sequence[str] = SWEEP_PROTOCOLS,
) -> List[Tuple[Scenario, Dict[Tuple[str, int], BulkRunResult]]]:
    """Plan, execute and regroup a class sweep.

    Returns the exact structure of the serial figure harness: one
    ``(scenario, {(protocol, initial): BulkRunResult})`` pair per
    scenario, in scenario order.
    """
    cells = plan_class_sweep(scenarios, file_size, lossy, protocols=protocols)
    results = execute_cells(cells, jobs=jobs, cache=cache, stats=stats)
    per_scenario = 2 * len(protocols)
    out: List[Tuple[Scenario, Dict[Tuple[str, int], BulkRunResult]]] = []
    for s_idx, scenario in enumerate(scenarios):
        matrix: Dict[Tuple[str, int], BulkRunResult] = {}
        base = s_idx * per_scenario
        for c_idx in range(per_scenario):
            cell = cells[base + c_idx]
            matrix[(cell.protocol, cell.initial_interface)] = results[base + c_idx]
        out.append((scenario, matrix))
    return out
