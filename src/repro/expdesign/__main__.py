"""CLI: inspect or export WSP scenario designs.

Examples::

    python -m repro.expdesign low-bdp-no-loss --count 10
    python -m repro.expdesign high-bdp-losses --count 253 --csv design.csv
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Optional, Sequence

from repro.expdesign.parameters import (
    ENV_CLASSES,
    PAPER_SCENARIOS_PER_CLASS,
    generate_scenarios,
)

HEADERS = [
    "index",
    "cap0_mbps", "rtt0_ms", "queue0_ms", "loss0_pct",
    "cap1_mbps", "rtt1_ms", "queue1_ms", "loss1_pct",
    "best_path",
]


def scenario_rows(scenarios):
    for s in scenarios:
        p0, p1 = s.paths
        yield [
            s.index,
            round(p0.capacity_mbps, 3), round(p0.rtt_ms, 2),
            round(p0.queuing_delay_ms, 2), round(p0.loss_percent, 3),
            round(p1.capacity_mbps, 3), round(p1.rtt_ms, 2),
            round(p1.queuing_delay_ms, 2), round(p1.loss_percent, 3),
            s.best_path,
        ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Generate WSP scenario designs over the paper's "
                    "Table 1 parameter ranges."
    )
    parser.add_argument("env_class", choices=sorted(ENV_CLASSES))
    parser.add_argument(
        "--count", type=int, default=PAPER_SCENARIOS_PER_CLASS,
        help=f"scenarios to draw (paper: {PAPER_SCENARIOS_PER_CLASS})",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--csv", metavar="PATH", default=None)
    args = parser.parse_args(argv)
    scenarios = generate_scenarios(args.env_class, args.count, seed=args.seed)
    rows = list(scenario_rows(scenarios))
    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(HEADERS)
            writer.writerows(rows)
        print(f"wrote {len(rows)} scenarios to {args.csv}")
    else:
        print("  ".join(f"{h:>10s}" for h in HEADERS))
        for row in rows:
            print("  ".join(f"{str(c):>10s}" for c in row))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
