"""Correct seeding: every RNG seed derives from an explicit seed param."""

import hashlib
import random


def derive_seed(base, stream):
    """Deterministic per-stream derivation (the sanctioned pattern)."""
    digest = hashlib.sha256(f"{base}:{stream}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def make_rng(seed, stream):
    return random.Random(derive_seed(seed, stream))


def fanout(seed, names):
    return [make_rng(seed, name) for name in sorted(names)]
