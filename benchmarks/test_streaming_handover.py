"""A9 — viewer experience of a live stream through a path failure.

A 4 Mbps stream with the initial path dying mid-playback: multipath
variants keep the viewer watching, proactive redundancy stalls zero
milliseconds, and single-path QUIC survives only via migration.
"""

from repro.apps.streaming import StreamingApp
from repro.apps.transport import make_client_server
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig

from benchmarks.common import run_once

PATHS = [
    PathConfig(10, 25, 60),
    PathConfig(10, 40, 60),
]


def _stream(protocol, qcfg=None):
    sim = Simulator()
    topo = TwoPathTopology(sim, PATHS, seed=4)
    client, server = make_client_server(protocol, sim, topo, quic_config=qcfg)
    app = StreamingApp(sim, client, server, bitrate_bps=4e6, duration=8.0)
    sim.schedule_at(2.0, topo.set_path_loss, 0, 100.0)
    ok = app.run(timeout=90.0)
    return app, ok


def test_streaming_through_path_failure(benchmark):
    def run():
        return {
            "mpquic": _stream("mpquic"),
            "redundant": _stream("mpquic", QuicConfig(scheduler="redundant")),
            "mptcp": _stream("mptcp"),
            "quic_migrate": _stream(
                "quic",
                QuicConfig(migrate_on_failure=True, keepalive_interval=0.2),
            ),
        }

    results = run_once(benchmark, run)
    for name, (app, ok) in results.items():
        assert ok, f"{name} never finished playback"
    # Proactive redundancy: zero rebuffering through the failure.
    assert results["redundant"][0].rebuffer_count == 0
    # Reactive multipath stalls briefly (well under a second).
    assert results["mpquic"][0].rebuffer_time < 1.5
    assert results["mptcp"][0].rebuffer_time < 1.5
    # Migration survives too, but never beats warm multipath.
    assert (
        results["quic_migrate"][0].rebuffer_time
        >= results["redundant"][0].rebuffer_time
    )
