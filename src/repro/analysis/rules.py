"""Determinism and protocol-invariant rules for ``repro.analysis``.

Every rule exists because a violation silently breaks a property the
evaluation depends on: bit-identical reruns (the parallel sweep cache
and the derandomized property suites both diff results across
processes and PYTHONHASHSEED values), or a QUIC/MPQUIC invariant the
paper's numbers assume.  See ``docs/static-analysis.md`` for the
catalog with examples.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.core import Finding, ModuleContext, Rule, register

#: Locations where wall-clock access is legitimate: benchmark harnesses
#: time real execution, the parallel executor reports elapsed wall time
#: for its own scheduling diagnostics (never into results), the
#: distributed executor's lease TTLs are real-time by nature (deadlines
#: must keep advancing while a worker is SIGKILLed), and the metrics
#: registry owns the one sanctioned timing handle.
WALL_CLOCK_EXEMPT = (
    "benchmarks/",
    "experiments/parallel.py",
    "experiments/distributed.py",
    "obs/metrics.py",
)

#: The only module allowed to touch ``time.perf_counter`` directly;
#: everything else times through ``repro.obs.metrics.clock`` (or the
#: ``timed()`` scope) so wall-time attribution stays in one place.
PERF_TIMING_EXEMPT = ("benchmarks/", "obs/metrics.py")

#: ``time`` module functions that read host clocks.
_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock",
    }
)

#: ``datetime``/``date`` constructors that read host clocks.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: Functions of the process-global ``random`` module RNG.  Calling any
#: of them couples results to import order and other modules' draws.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "gammavariate",
        "betavariate",
        "paretovariate",
        "weibullvariate",
        "seed",
    }
)

_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)

_DICT_MUTATORS = frozenset(
    {"pop", "popitem", "clear", "update", "setdefault", "__delitem__"}
)

#: Identifiers that denote simulated-time or rate quantities.
_TIME_RATE_NAME = re.compile(
    r"(^|_)(time|now|deadline|rtt|srtt|delay|rate|bw|bandwidth|goodput|cwnd|ssthresh)(_|$|s$)"
)


def _walk(tree: ast.AST) -> Iterator[ast.AST]:
    return ast.walk(tree)


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name for Name/Attribute chains (``a.b.c``), else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_exempt(ctx: ModuleContext, exempt: Sequence[str]) -> bool:
    rel = ctx.rel_path
    for pattern in exempt:
        if pattern.endswith("/"):
            if rel.startswith(pattern) or f"/{pattern}" in f"/{rel}":
                return True
        elif rel == pattern or rel.endswith("/" + pattern):
            return True
    return False


@register
class WallClockRule(Rule):
    """No host wall clocks inside the simulation or transport code."""

    rule_id = "wall-clock"
    rationale = (
        "Simulated time is the only clock; reading time.time() or "
        "datetime.now() makes results vary run to run and breaks the "
        "bit-identical parallel/serial sweep equivalence."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if _is_exempt(ctx, WALL_CLOCK_EXEMPT):
            return []
        findings = []
        for node in _walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain is None:
                    continue
                parts = chain.split(".")
                if parts[0] == "time" and parts[-1] in _TIME_FUNCS and len(parts) == 2:
                    findings.append(
                        self.finding(ctx, node, f"wall-clock read `{chain}()`")
                    )
                elif (
                    parts[-1] in _DATETIME_FUNCS
                    and len(parts) >= 2
                    and parts[-2] in ("datetime", "date")
                ):
                    findings.append(
                        self.finding(ctx, node, f"wall-clock read `{chain}()`")
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FUNCS:
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"imports wall-clock `time.{alias.name}`",
                                )
                            )
        return findings


@register
class PerfTimingRule(Rule):
    """All timing goes through the metrics registry's clock."""

    rule_id = "perf-timing"
    rationale = (
        "Ad-hoc time.perf_counter() timing scatters wall-clock reads "
        "that the metrics registry cannot attribute; use "
        "repro.obs.metrics.clock() (or metrics.timed()) so profiles "
        "and per-subsystem wall time stay consistent."
    )

    #: Unlike the wall-clock rule, bare *references* are flagged too:
    #: ``pc = time.perf_counter`` followed by ``pc()`` would evade a
    #: call-only check.
    _FORBIDDEN = frozenset({"perf_counter", "perf_counter_ns"})

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if _is_exempt(ctx, PERF_TIMING_EXEMPT):
            return []
        findings = []
        for node in _walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if chain is None:
                    continue
                parts = chain.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "time"
                    and parts[1] in self._FORBIDDEN
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"direct `{chain}` timing (use "
                            "repro.obs.metrics.clock instead)",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in self._FORBIDDEN:
                            findings.append(
                                self.finding(
                                    ctx,
                                    node,
                                    f"imports `time.{alias.name}` (use "
                                    "repro.obs.metrics.clock instead)",
                                )
                            )
        return findings


@register
class UnseededRandomRule(Rule):
    """RNG must be an injected, explicitly seeded instance."""

    rule_id = "unseeded-random"
    rationale = (
        "The process-global random module (and unseeded Random()/"
        "default_rng()) draws from shared, order-dependent state; "
        "loss processes must come from a seeded rng passed in."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings = []
        for node in _walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain is None:
                    continue
                parts = chain.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "random"
                    and parts[1] in _GLOBAL_RANDOM_FUNCS
                ):
                    findings.append(
                        self.finding(
                            ctx, node, f"call to process-global RNG `{chain}()`"
                        )
                    )
                elif parts[-1] == "Random" and not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            ctx, node, "`random.Random()` without an explicit seed"
                        )
                    )
                elif (
                    parts[-1] == "default_rng"
                    and "random" in parts
                    and not node.args
                    and not node.keywords
                ):
                    findings.append(
                        self.finding(
                            ctx, node, "`default_rng()` without an explicit seed"
                        )
                    )
                elif (
                    len(parts) >= 3
                    and parts[-2] == "random"
                    and parts[0] in ("np", "numpy")
                    and parts[-1] not in ("default_rng", "Generator", "SeedSequence")
                ):
                    findings.append(
                        self.finding(
                            ctx, node, f"call to numpy global RNG `{chain}()`"
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _GLOBAL_RANDOM_FUNCS:
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"imports process-global RNG `random.{alias.name}`",
                            )
                        )
        return findings


@register
class SetIterationRule(Rule):
    """Never iterate a set directly — order depends on PYTHONHASHSEED."""

    rule_id = "set-iteration"
    rationale = (
        "Set iteration order is hash-dependent; feeding it into event "
        "scheduling or wire encoding changes results across "
        "PYTHONHASHSEED values.  Iterate sorted(...) instead."
    )

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in (
                "set",
                "frozenset",
            ):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
            ):
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings = []
        for node in _walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it):
                    findings.append(
                        self.finding(
                            ctx,
                            it,
                            "iteration over a set expression (hash-order "
                            "nondeterminism); wrap in sorted(...)",
                        )
                    )
        return findings


@register
class MutableDefaultRule(Rule):
    """No mutable default arguments."""

    rule_id = "mutable-default"
    rationale = (
        "A mutable default is shared across every call; state leaks "
        "between simulations and couples independent runs."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings = []
        for node in _walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set", "bytearray")
                )
                if mutable:
                    findings.append(
                        self.finding(
                            ctx,
                            default,
                            "mutable default argument; use None and "
                            "create inside the function",
                        )
                    )
        return findings


@register
class FloatEqualityRule(Rule):
    """No ``==``/``!=`` on float time/rate quantities."""

    rule_id = "float-equality"
    rationale = (
        "Simulated timestamps and rates are accumulated floats; exact "
        "comparison is brittle under re-association (e.g. a different "
        "summation order in a refactor).  Compare with tolerances or "
        "ordering operators."
    )

    def _is_float_literal(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        # Unary minus on a float literal (-1.0).
        if (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and self._is_float_literal(node.operand)
        ):
            return True
        return False

    def _is_time_rate_name(self, node: ast.AST) -> bool:
        chain = _attr_chain(node)
        if chain is None:
            return False
        return bool(_TIME_RATE_NAME.search(chain.split(".")[-1]))

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings = []
        for node in _walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                pair = (left, right)
                literal = any(self._is_float_literal(x) for x in pair)
                both_named = all(self._is_time_rate_name(x) for x in pair)
                if literal or both_named:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "float equality on a time/rate quantity; use "
                            "an ordering comparison or tolerance",
                        )
                    )
        return findings


@register
class SilentExceptRule(Rule):
    """No bare ``except:`` or swallowed broad exceptions."""

    rule_id = "silent-except"
    rationale = (
        "A swallowed exception in the engine turns an invariant "
        "violation into silently-wrong results; failures must "
        "propagate or be handled narrowly."
    )

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            or isinstance(stmt, ast.Continue)
            for stmt in handler.body
        )

    def _is_broad(self, type_node: Optional[ast.expr]) -> bool:
        if type_node is None:
            return True
        names = (
            [type_node]
            if not isinstance(type_node, ast.Tuple)
            else list(type_node.elts)
        )
        for name in names:
            chain = _attr_chain(name)
            if chain in ("Exception", "BaseException"):
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings = []
        for node in _walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(ctx, node, "bare `except:`; name the exception")
                )
            elif self._is_broad(node.type) and self._swallows(node):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "broad exception silently swallowed; handle "
                        "narrowly or re-raise",
                    )
                )
        return findings


@register
class ObsCategoryRule(Rule):
    """Telemetry categories must be the registered ``CAT_*`` constants."""

    rule_id = "obs-category"
    rationale = (
        "Free-form category strings drift from the registered qlog "
        "taxonomy in repro.obs.events and silently break exporters "
        "and trace queries keyed on category."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings = []
        for node in _walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
            ):
                continue
            category: Optional[ast.expr] = None
            if len(node.args) >= 3:
                category = node.args[2]
            for kw in node.keywords:
                if kw.arg == "category":
                    category = kw.value
            if category is None:
                continue
            if isinstance(category, ast.Constant) and isinstance(category.value, str):
                findings.append(
                    self.finding(
                        ctx,
                        category,
                        f"emit() with literal category {category.value!r}; "
                        "use the CAT_* constant from repro.obs.events",
                    )
                )
        return findings


@register
class DictMutationRule(Rule):
    """No mutating a dict while iterating over it."""

    rule_id = "dict-mutation"
    rationale = (
        "Inserting or deleting during iteration either raises at "
        "runtime or, via .pop on a copy-free loop, skips entries "
        "depending on insertion history."
    )

    def _loop_container(self, iter_node: ast.expr) -> Optional[str]:
        """Unparsed container expression when iterating a dict view."""
        target = iter_node
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr in ("keys", "items", "values")
            and not iter_node.args
        ):
            target = iter_node.func.value
        if isinstance(target, (ast.Name, ast.Attribute)):
            return ast.unparse(target)
        return None

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings = []
        for node in _walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            container = self._loop_container(node.iter)
            if container is None:
                continue
            for sub in ast.walk(node):
                if sub is node.iter:
                    continue
                if isinstance(sub, ast.Delete):
                    for tgt in sub.targets:
                        if (
                            isinstance(tgt, ast.Subscript)
                            and ast.unparse(tgt.value) == container
                        ):
                            findings.append(
                                self.finding(
                                    ctx,
                                    sub,
                                    f"deletes from `{container}` while "
                                    "iterating it; iterate list(...) instead",
                                )
                            )
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _DICT_MUTATORS
                    and ast.unparse(sub.func.value) == container
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            sub,
                            f"calls `{container}.{sub.func.attr}()` while "
                            "iterating it; iterate list(...) instead",
                        )
                    )
        return findings


#: Modules on the per-packet hot path: one object allocation or bytes
#: copy here multiplies by the packet count of every simulation (see
#: docs/performance.md, "hot-path anatomy").
HOT_PATH_MODULES = (
    "quic/frames.py",
    "quic/wire.py",
    "quic/packet.py",
    "quic/connection.py",
    "quic/recovery.py",
    "quic/stream.py",
    "quic/ackmgr.py",
    "netsim/engine.py",
    "netsim/link.py",
    "util/ranges.py",
    "util/reassembly.py",
)


@register
class HotPathRule(Rule):
    """No quadratic ``bytes +=`` or frozen dataclasses in hot modules."""

    rule_id = "hot-path"
    rationale = (
        "The per-packet modules pay any per-object cost once per "
        "simulated packet: `bytes +=` accumulation copies the whole "
        "buffer each step (quadratic), and frozen dataclasses "
        "construct via object.__setattr__ (3-4x a __slots__ class).  "
        "Use a bytearray and plain __slots__ classes; genuine cold "
        "paths may carry `# repro: allow[hot-path]`."
    )

    def _in_hot_module(self, ctx: ModuleContext) -> bool:
        rel = ctx.rel_path
        return any(
            rel == pattern or rel.endswith("/" + pattern)
            for pattern in HOT_PATH_MODULES
        )

    def _is_bytes_init(self, node: ast.expr) -> bool:
        """True for ``b"..."`` literals and ``bytes(...)`` calls."""
        if isinstance(node, ast.Constant) and isinstance(node.value, bytes):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "bytes"
        )

    def _is_frozen_dataclass(self, node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            name = _attr_chain(deco.func)
            if name is None or name.split(".")[-1] != "dataclass":
                continue
            for kw in deco.keywords:
                if (
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                ):
                    return True
        return False

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not self._in_hot_module(ctx):
            return []
        findings = []
        # Names bound to a bytes value anywhere in the module; `+=` on
        # one of them is the classic quadratic accumulator.  Names also
        # bound to bytearray(...) are excluded: `+=` on a bytearray is
        # an in-place extend, which is exactly the recommended fix.
        byte_names = set()
        bytearray_names = set()
        for node in _walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                is_bytes = self._is_bytes_init(value)
                is_bytearray = (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "bytearray"
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        if is_bytes:
                            byte_names.add(target.id)
                        elif is_bytearray:
                            bytearray_names.add(target.id)
        byte_names -= bytearray_names
        for node in _walk(ctx.tree):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                target = node.target
                if isinstance(target, ast.Name) and target.id in byte_names:
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "bytes `+=` accumulation on the packet hot "
                            "path copies the buffer every step; build "
                            "into a bytearray instead",
                        )
                    )
            elif isinstance(node, ast.ClassDef) and self._is_frozen_dataclass(
                node
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"frozen dataclass `{node.name}` in a hot-path "
                        "module constructs via object.__setattr__; use "
                        "a __slots__ class with explicit __init__",
                    )
                )
        return findings
