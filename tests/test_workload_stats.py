"""Statistical validation of the open-loop workload generators.

Generators are only useful if their samples actually have the
distributional properties the harness assumes, so these tests check
them *statistically*: Poisson interarrival sample means land within
tolerance of ``1/rate``, Pareto sizes are visibly heavier-tailed than
any exponential (sample CV well above 1), heavy-tailed arrivals have
the requested burstiness, and the seeding contract holds (equal seeds
produce bit-identical streams, different seeds disjoint ones, under
any ``PYTHONHASHSEED``).

The quantile sketch backing the harness's tail-FCT numbers gets the
same treatment: p50/p99 within 2% of exact on known distributions,
extreme tails exact via the top-K sidecar, entry count bounded.
"""

from __future__ import annotations

import math
import random
from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.experiments.metrics import QuantileSketch, jain_index
from repro.experiments.workload import (
    WorkloadSpec,
    derive_seed,
    flow_sizes,
    interarrival_times,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _mean(xs):
    return sum(xs) / len(xs)


def _cv(xs):
    mu = _mean(xs)
    var = sum((x - mu) ** 2 for x in xs) / len(xs)
    return math.sqrt(var) / mu


class TestSeeding:
    def test_derive_seed_is_hash_seed_independent(self):
        # SHA-256 of the canonical string: a frozen contract, so cache
        # keys and flow plans survive interpreter and PYTHONHASHSEED
        # changes.  (Value pinned on first implementation.)
        assert derive_seed(1, "arrival:poisson") == derive_seed(1, "arrival:poisson")
        assert derive_seed(42, "x") == 0xC425CF7F0966AFC2

    def test_equal_seeds_bit_identical_streams(self):
        for maker in (
            lambda s: interarrival_times("poisson", 50.0, 500, s),
            lambda s: interarrival_times("lognormal", 50.0, 500, s, cv=3.0),
            lambda s: flow_sizes("pareto", 100_000, 500, s),
            lambda s: flow_sizes("uniform", 100_000, 500, s),
        ):
            assert maker(7) == maker(7)

    def test_different_seeds_disjoint_streams(self):
        a = interarrival_times("poisson", 50.0, 500, 1)
        b = interarrival_times("poisson", 50.0, 500, 2)
        assert a != b
        # Continuous samples from disjoint streams should share no
        # values at all, not merely differ somewhere.
        assert not set(a) & set(b)

    def test_streams_are_independent_per_name(self):
        # Arrival and size streams of the SAME seed must not be the
        # same underlying sequence in disguise.
        gaps = interarrival_times("poisson", 1.0, 200, 5)
        sizes = flow_sizes("pareto", 1_000_000, 200, 5)
        ranked_gaps = sorted(range(200), key=lambda i: gaps[i])
        ranked_sizes = sorted(range(200), key=lambda i: sizes[i])
        assert ranked_gaps != ranked_sizes

    def test_spec_plan_is_deterministic(self):
        spec = WorkloadSpec(n_flows=100, seed=3)
        assert spec.plan() == spec.plan()
        other = WorkloadSpec(n_flows=100, seed=4)
        assert spec.plan() != other.plan()


class TestArrivalProcesses:
    def test_poisson_mean_matches_rate(self):
        rate = 50.0
        for seed in (1, 2, 3):
            gaps = interarrival_times("poisson", rate, 4000, seed)
            # Mean of 4000 exponentials: std error = mean/sqrt(n) ≈ 1.6%,
            # so a 6% tolerance is ~4 sigma.
            assert _mean(gaps) == pytest.approx(1.0 / rate, rel=0.06)

    def test_poisson_cv_is_one(self):
        gaps = interarrival_times("poisson", 20.0, 4000, 9)
        assert _cv(gaps) == pytest.approx(1.0, rel=0.1)

    def test_deterministic_is_constant(self):
        gaps = interarrival_times("deterministic", 10.0, 50, 1)
        assert gaps == [0.1] * 50

    def test_lognormal_mean_and_burstiness(self):
        rate = 50.0
        cv = 3.0
        gaps = interarrival_times("lognormal", rate, 20000, 4, cv=cv)
        # Heavy tail makes the sample mean noisy; 25% catches a wrong
        # parameterisation (x2 off) without flaking.
        assert _mean(gaps) == pytest.approx(1.0 / rate, rel=0.25)
        # Burstier than Poisson by a clear margin.
        assert _cv(gaps) > 1.5

    def test_all_gaps_positive(self):
        for arrival in ("deterministic", "poisson", "lognormal"):
            assert all(
                g > 0.0 for g in interarrival_times(arrival, 100.0, 500, 8)
            )

    def test_rejects_unknown_process_and_bad_rate(self):
        with pytest.raises(ValueError):
            interarrival_times("weibull", 1.0, 10, 1)
        with pytest.raises(ValueError):
            interarrival_times("poisson", 0.0, 10, 1)


class TestSizeDistributions:
    def test_fixed_sizes(self):
        assert flow_sizes("fixed", 5000, 10, 1) == [5000] * 10

    def test_uniform_mean_and_bounds(self):
        sizes = flow_sizes("uniform", 100_000, 4000, 2, spread=0.5)
        assert _mean(sizes) == pytest.approx(100_000, rel=0.05)
        assert all(50_000 <= s <= 150_000 for s in sizes)

    def test_pareto_mean_within_tolerance(self):
        sizes = flow_sizes("pareto", 100_000, 20000, 3)
        # alpha=1.3 has infinite variance: the sample mean converges
        # slowly and the cap shaves the extreme tail, so the tolerance
        # is loose — this catches a mis-scaled x_m, not sampling noise.
        assert _mean(sizes) == pytest.approx(100_000, rel=0.35)

    def test_pareto_is_heavy_tailed(self):
        sizes = flow_sizes("pareto", 100_000, 20000, 3)
        # Exponential (and uniform) have CV <= 1; mice-and-elephants
        # must be far beyond that.
        assert _cv(sizes) > 2.5
        # ... and the elephants dominate the bytes: top 10% of flows
        # carry over half the volume.
        ordered = sorted(sizes, reverse=True)
        top_decile = sum(ordered[: len(ordered) // 10])
        assert top_decile / sum(sizes) > 0.5

    def test_pareto_respects_cap_and_floor(self):
        sizes = flow_sizes("pareto", 1000, 5000, 6, cap_factor=10.0)
        assert all(1 <= s <= 10_000 for s in sizes)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            flow_sizes("zipf", 1000, 10, 1)
        with pytest.raises(ValueError):
            flow_sizes("pareto", 1000, 10, 1, pareto_alpha=1.0)
        with pytest.raises(ValueError):
            flow_sizes("uniform", 1000, 10, 1, spread=1.5)


class TestSpecValidation:
    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            WorkloadSpec(n_flows=0)
        with pytest.raises(ValueError):
            WorkloadSpec(n_flows=1, fidelity="quantum")
        with pytest.raises(ValueError):
            WorkloadSpec(n_flows=1, arrival="weibull")
        with pytest.raises(ValueError):
            WorkloadSpec(n_flows=1, size_dist="zipf")
        with pytest.raises(ValueError):
            WorkloadSpec(n_flows=1, n_pairs=0)

    def test_plan_arrival_times_are_monotone(self):
        plan = WorkloadSpec(n_flows=200, seed=1).plan()
        times = [t for t, _ in plan]
        assert times == sorted(times)
        assert all(size >= 1 for _, size in plan)


class TestAnalyzerClean:
    def test_workload_modules_pass_static_analysis(self):
        # No wall-clock reads, no unseeded randomness, no literal obs
        # categories in the new open-loop modules.
        findings, count = analyze_paths([
            REPO_ROOT / "src" / "repro" / "experiments" / "workload.py",
            REPO_ROOT / "src" / "repro" / "apps" / "shortflow.py",
        ])
        assert findings == []
        assert count == 2


class TestJainIndex:
    def test_equal_allocations_are_fair(self):
        assert jain_index([5.0] * 10) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_all_zero_counts_as_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            jain_index([])

    def test_scale_invariant(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert jain_index(xs) == pytest.approx(
            jain_index([x * 1e9 for x in xs])
        )


def _exact_quantile(data, q):
    ordered = sorted(data)
    idx = q * (len(ordered) - 1)
    lo = int(idx)
    hi = min(lo + 1, len(ordered) - 1)
    frac = idx - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


class TestQuantileSketch:
    DISTRIBUTIONS = {
        "uniform": lambda rng: rng.uniform(0.0, 100.0),
        "exponential": lambda rng: rng.expovariate(1.0),
        "lognormal": lambda rng: rng.lognormvariate(0.0, 1.5),
        "pareto": lambda rng: 1.0 / (1.0 - rng.random()) ** (1.0 / 1.3),
    }

    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    @pytest.mark.parametrize("seed", [1, 2])
    def test_p50_p99_within_two_percent(self, dist, seed):
        rng = random.Random(derive_seed(seed, f"sketch:{dist}"))
        sample = self.DISTRIBUTIONS[dist]
        sketch = QuantileSketch()
        data = []
        for _ in range(50_000):
            v = sample(rng)
            data.append(v)
            sketch.insert(v)
        for q in (0.50, 0.99):
            exact = _exact_quantile(data, q)
            assert sketch.query(q) == pytest.approx(exact, rel=0.02), (
                f"{dist} seed={seed} q={q}"
            )

    def test_p999_exact_from_sidecar(self):
        # 50k < TOP_K/0.001 so the p999 rank falls inside the exact
        # top-256 sidecar: no sketch error at all in the extreme tail.
        rng = random.Random(derive_seed(1, "sketch:tail"))
        sketch = QuantileSketch()
        data = []
        for _ in range(50_000):
            v = rng.lognormvariate(0.0, 2.0)
            data.append(v)
            sketch.insert(v)
        assert sketch.p999() == pytest.approx(
            _exact_quantile(data, 0.999), rel=1e-9
        )

    def test_small_n_is_exact(self):
        rng = random.Random(derive_seed(2, "sketch:small"))
        sketch = QuantileSketch()
        data = []
        for _ in range(100):
            v = rng.uniform(0.0, 10.0)
            data.append(v)
            sketch.insert(v)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert sketch.query(q) == pytest.approx(
                _exact_quantile(data, q), rel=1e-9
            )

    def test_memory_is_bounded(self):
        rng = random.Random(derive_seed(3, "sketch:memory"))
        sketch = QuantileSketch()
        for _ in range(200_000):
            sketch.insert(rng.expovariate(1.0))
        # Summary + buffer + top-K sidecar: thousands of stored values
        # would mean compression is broken.
        assert len(sketch) < 2500
        assert sketch.n == 200_000

    def test_extremes_are_exact(self):
        rng = random.Random(derive_seed(4, "sketch:extremes"))
        values = [rng.uniform(-50.0, 50.0) for _ in range(10_000)]
        sketch = QuantileSketch()
        for v in values:
            sketch.insert(v)
        assert sketch.query(0.0) == min(values)
        assert sketch.query(1.0) == max(values)

    def test_query_validation(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.query(0.5)  # empty
        sketch.insert(1.0)
        with pytest.raises(ValueError):
            sketch.query(1.5)
        with pytest.raises(ValueError):
            QuantileSketch(eps=0.6)
