"""Planted seed-taint defects: nondeterminism flowing into RNG seeds.

Every path here crosses at least one call boundary — the class of bug
the per-module ``unseeded-random`` rule cannot see.
"""

import random
import time


def wall_clock_token() -> float:
    """A helper that quietly returns a nondeterministic value."""
    return time.time()


def make_rng() -> random.Random:
    # Source (wall clock) flows through the helper's return value.
    return random.Random(wall_clock_token())  # corpus: expect[seed-taint]


def seeded(seed: int) -> random.Random:
    """Innocent-looking constructor: the taint arrives via ``seed``."""
    return random.Random(seed)


def rng_for(token: str) -> random.Random:
    # hash() is PYTHONHASHSEED-dependent; the sink is inside seeded().
    return seeded(hash(token))  # corpus: expect[seed-taint]


def mix(base: int) -> int:
    return (base * 2654435761) % (2**32)


def bootstrap_rng() -> random.Random:
    boot = random.Random()
    draw = boot.random()
    # An unseeded RNG's draw, laundered through an arithmetic helper.
    return random.Random(mix(draw))  # corpus: expect[seed-taint]
