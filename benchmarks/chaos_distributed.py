"""Chaos drill for the distributed sweep executor: kill -9 everything.

The spool-and-lease protocol's whole claim is that no single process
matters.  This drill earns that claim in four stages:

1. **serial reference** — the sweep executed by ``run_cell`` in this
   process: the matrix every later stage must reproduce bit for bit;
2. **worker SIGKILL** — three subprocess workers drain the spool; one
   is killed -9 mid-cell.  Its lease expires, a peer reclaims the
   cell, and the sweep completes identical to stage 1;
3. **coordinator SIGKILL + restart** — a *subprocess* coordinator is
   killed -9 mid-sweep, then a fresh coordinator is pointed at the
   same spool.  It recovers the committed prefix from the cache,
   re-queues the rest, and finishes — again bit-identical;
4. **streaming scale** — a large synthetic sweep (default 10 000
   cells) drains through aggregate mode: the coordinator folds every
   commit into bounded-memory sketches, never materialising the
   result matrix, and the sketch footprint is asserted to stay far
   below one entry per cell.

Exit status is non-zero on any mismatch; CI uploads the spool
telemetry and the drill report as artifacts.

Usage::

    PYTHONPATH=src python benchmarks/chaos_distributed.py \
        --scenarios 2 --file-size 500000 --scale-cells 10000 \
        --report CHAOS_distributed.json \
        --telemetry CHAOS_distributed_telemetry.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import sys
import tempfile
import time
from typing import List, Optional, Sequence

from repro.expdesign.parameters import generate_scenarios
from repro.experiments import distributed as dist
from repro.experiments.parallel import (
    SweepCell,
    plan_class_sweep,
    result_to_dict,
    run_cell,
)

#: Lease TTL for the kill stages: short enough that reclamation (not
#: the kill) dominates the stage's wall clock, long enough that a
#: healthy worker's heartbeat (every TTL/3) renews comfortably.
DRILL_TTL = 1.5


def _matrix(results) -> List[dict]:
    return [result_to_dict(r) for r in results]


def _wait_for(predicate, timeout: float, what: str) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    print(f"FAIL: timed out waiting for {what}", file=sys.stderr)
    return False


def _synthetic_cells(n: int) -> List[SweepCell]:
    return [
        SweepCell(
            paths=(),
            protocol=("mpquic" if i % 2 else "quic"),
            initial_interface="wifi",
            file_size=100_000 + i,
            repetitions=1,
            base_seed=7,
        )
        for i in range(n)
    ]


def stage_worker_kill(cells, reference, tmp: str, report: dict) -> int:
    """Three workers, one SIGKILLed mid-cell; sweep must still match."""
    spool = dist.init_spool(
        os.path.join(tmp, "spool-worker-kill"), cells,
        runner="simulation", ttl=DRILL_TTL,
    )
    procs = [dist.spawn_worker(spool, f"w{i}") for i in range(3)]
    victim = procs[0]
    failures = 0
    try:
        if not _wait_for(
            lambda: bool(dist._lease_files(spool)), 30.0,
            "any worker to claim a cell",
        ):
            failures += 1
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=10.0)
        print(f"stage 2: worker w0 (pid {victim.pid}) killed -9 mid-sweep")
        outcome = dist.coordinate(
            spool.root, collect="results", workers=0, max_seconds=180.0,
        )
    finally:
        for proc in procs[1:]:
            proc.terminate()
            proc.wait(timeout=10.0)
    reclaims = [
        r for r in _read_telemetry(spool)
        if r.get("record") == "lease_reclaimed"
    ]
    report["worker_kill"] = {
        "complete": outcome.stats.complete,
        "committed": outcome.stats.committed,
        "leases_reclaimed_by_peers": len(reclaims),
    }
    if not outcome.stats.complete:
        print("FAIL: sweep did not complete after worker kill", file=sys.stderr)
        failures += 1
    elif _matrix(outcome.results) != reference:
        print(
            "FAIL: worker-kill results differ from serial reference",
            file=sys.stderr,
        )
        failures += 1
    else:
        print(
            f"stage 2: complete and bit-identical "
            f"(peer reclaims recorded: {len(reclaims)})"
        )
    _save_telemetry(spool, report, "worker_kill")
    return failures


def stage_coordinator_kill(cells, reference, tmp: str, report: dict) -> int:
    """SIGKILL a subprocess coordinator mid-sweep; a restart finishes."""
    import subprocess

    spool_root = os.path.join(tmp, "spool-coord-kill")
    spool = dist.init_spool(
        spool_root, cells, runner="simulation", ttl=DRILL_TTL,
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_src_path(), env.get("PYTHONPATH")) if p
    )
    coord = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.distributed",
            "coordinate", spool_root, "--workers", "2",
            "--collect", "aggregate",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    failures = 0
    # Kill the coordinator as soon as real progress exists (first
    # commit), while work is still in flight.
    if not _wait_for(
        lambda: bool(dist.terminal_keys(spool)[0]), 60.0,
        "the first committed cell",
    ):
        failures += 1
    coord.send_signal(signal.SIGKILL)
    coord.wait(timeout=10.0)
    committed_at_kill = len(dist.terminal_keys(spool)[0])
    print(
        f"stage 3: coordinator (pid {coord.pid}) killed -9 with "
        f"{committed_at_kill}/{len(cells)} cells committed"
    )
    # Its spawned workers are orphaned but keep draining the spool —
    # or die with it; either way the restarted coordinator recovers:
    # committed cells from the cache, the rest via ensure_tokens and
    # lease expiry.
    outcome = dist.coordinate(
        spool_root, collect="results", workers=2, max_seconds=180.0,
    )
    report["coordinator_kill"] = {
        "complete": outcome.stats.complete,
        "committed_at_kill": committed_at_kill,
        "committed": outcome.stats.committed,
        "requeued": outcome.stats.requeued,
        "reclaimed": outcome.stats.reclaimed,
    }
    if not outcome.stats.complete:
        print(
            "FAIL: restarted coordinator did not finish the sweep",
            file=sys.stderr,
        )
        failures += 1
    elif _matrix(outcome.results) != reference:
        print(
            "FAIL: coordinator-restart results differ from serial reference",
            file=sys.stderr,
        )
        failures += 1
    else:
        print("stage 3: restarted coordinator recovered, bit-identical")
    _save_telemetry(spool, report, "coordinator_kill")
    return failures


def stage_streaming_scale(n_cells: int, tmp: str, report: dict) -> int:
    """A big synthetic sweep through aggregate mode: bounded memory."""
    cells = _synthetic_cells(n_cells)
    spool_root = os.path.join(tmp, "spool-scale")
    t0 = time.perf_counter()
    outcome = dist.run_distributed_sweep(
        cells, spool_root=spool_root, workers=2,
        runner="synthetic", collect="aggregate",
    )
    elapsed = time.perf_counter() - t0
    failures = 0
    agg = outcome.aggregate
    sketch_entries = agg.sketch_entries() if agg is not None else -1
    report["streaming_scale"] = {
        "cells": n_cells,
        "complete": outcome.stats.complete,
        "seconds": round(elapsed, 2),
        "cells_per_second": round(n_cells / elapsed, 1),
        "sketch_entries": sketch_entries,
        "results_materialized": len(outcome.results),
    }
    if not outcome.stats.complete or agg is None or agg.cells != n_cells:
        print("FAIL: scale sweep did not fold every cell", file=sys.stderr)
        failures += 1
    if outcome.results:
        print(
            "FAIL: aggregate mode materialised a result matrix",
            file=sys.stderr,
        )
        failures += 1
    # The bound that makes streaming worth having: the sketches hold a
    # small fraction of the observations they summarise.
    if sketch_entries < 0 or sketch_entries > n_cells:
        print(
            f"FAIL: sketch footprint {sketch_entries} entries is not "
            f"bounded below the {n_cells}-cell sweep",
            file=sys.stderr,
        )
        failures += 1
    if not failures:
        summary = agg.summary()
        print(
            f"stage 4: {n_cells} cells folded in {elapsed:.1f}s "
            f"({n_cells / elapsed:.0f} cells/s), sketch footprint "
            f"{sketch_entries} entries, p50 transfer "
            f"{summary['total']['transfer_time']['p50']:.3f}s"
        )
    return failures


def _src_path() -> Optional[str]:
    import repro

    pkg = os.path.dirname(os.path.abspath(repro.__file__))
    return os.path.dirname(pkg)


def _read_telemetry(spool) -> List[dict]:
    try:
        with open(spool.telemetry_path) as fh:
            return [json.loads(line) for line in fh]
    except OSError:
        return []


def _save_telemetry(spool, report: dict, stage: str) -> None:
    """Stash the spool's telemetry before its tempdir is destroyed."""
    sidecar = report.setdefault("_telemetry", {})
    sidecar[stage] = _read_telemetry(spool)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenarios", type=int, default=2)
    parser.add_argument("--file-size", type=int, default=500_000)
    parser.add_argument("--env-class", default="low-bdp-no-loss")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--scale-cells", type=int, default=10_000)
    parser.add_argument("--report", default="CHAOS_distributed.json")
    parser.add_argument(
        "--telemetry", default="CHAOS_distributed_telemetry.jsonl"
    )
    args = parser.parse_args(argv)

    scenarios = generate_scenarios(
        args.env_class, args.scenarios, seed=args.seed
    )
    cells = plan_class_sweep(scenarios, args.file_size, lossy=False)
    print(
        f"distributed chaos drill: {len(cells)} simulation cells, "
        f"ttl={DRILL_TTL}s, scale stage {args.scale_cells} synthetic cells"
    )

    # Stage 1: serial reference matrix.
    t0 = time.perf_counter()
    reference = _matrix([run_cell(cell) for cell in cells])
    print(
        f"stage 1 (serial reference): {len(reference)} results "
        f"in {time.perf_counter() - t0:.1f}s"
    )

    report: dict = {"cells": len(cells)}
    failures = 0
    tmp = tempfile.mkdtemp(prefix="chaos-dist-")
    try:
        failures += stage_worker_kill(cells, reference, tmp, report)
        failures += stage_coordinator_kill(cells, reference, tmp, report)
        failures += stage_streaming_scale(args.scale_cells, tmp, report)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    telemetry = report.pop("_telemetry", {})
    with open(args.telemetry, "w") as fh:
        for stage, records in telemetry.items():
            for record in records:
                fh.write(json.dumps({"stage": stage, **record}) + "\n")
    report["failures"] = failures
    with open(args.report, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"report -> {args.report}; telemetry -> {args.telemetry}")

    if failures:
        print(f"{failures} distributed chaos gate(s) failed", file=sys.stderr)
        return 1
    print(
        "distributed chaos drill passed: worker kill, coordinator "
        "restart and streaming scale all OK"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
