"""Conformant telemetry: registry constants and registered metrics."""

from .events import CAT_FLOW


class Probe:
    def ping(self, tracer, now):
        tracer.emit(now, "h1", CAT_FLOW, "ping", size=120)
        tracer.sample(now, "h1", 0, "cwnd", 10.0)
