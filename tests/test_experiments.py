"""Tests for metrics, the scenario runner and the handover experiment."""

import pytest

from repro.experiments.metrics import (
    cdf_points,
    experimental_aggregation_benefit,
    fraction_greater_than,
    median,
    quartiles,
)
from repro.experiments.report import ascii_box, ascii_cdf, box_stats, table, timeline
from repro.experiments.runner import run_bulk, run_handover
from repro.experiments.scenarios import HANDOVER_SCENARIO
from repro.netsim.topology import PathConfig


class TestAggregationBenefit:
    def test_equal_to_best_single_path_is_zero(self):
        assert experimental_aggregation_benefit(10.0, [10.0, 5.0]) == 0.0

    def test_perfect_pooling_is_one(self):
        assert experimental_aggregation_benefit(15.0, [10.0, 5.0]) == pytest.approx(1.0)

    def test_partial_pooling(self):
        assert experimental_aggregation_benefit(12.5, [10.0, 5.0]) == pytest.approx(0.5)

    def test_failure_is_minus_one(self):
        assert experimental_aggregation_benefit(0.0, [10.0, 5.0]) == pytest.approx(-1.0)

    def test_worse_than_best_uses_second_formula(self):
        assert experimental_aggregation_benefit(5.0, [10.0, 5.0]) == pytest.approx(-0.5)

    def test_super_aggregation_above_one(self):
        # Experimental values can exceed the sum of single-path runs.
        assert experimental_aggregation_benefit(20.0, [10.0, 5.0]) > 1.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            experimental_aggregation_benefit(1.0, [])
        with pytest.raises(ValueError):
            experimental_aggregation_benefit(1.0, [0.0, 0.0])


class TestStatHelpers:
    def test_cdf_points(self):
        pts = cdf_points([3.0, 1.0, 2.0])
        assert pts == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)),
                       (3.0, pytest.approx(1.0))]

    def test_fraction_greater_than(self):
        assert fraction_greater_than([0.5, 1.5, 2.0, 1.0], 1.0) == 0.5
        assert fraction_greater_than([], 1.0) == 0.0

    def test_median(self):
        assert median([3, 1, 2]) == 2
        assert median([4, 1, 2, 3]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_quartiles(self):
        q1, med, q3 = quartiles(range(1, 6))
        assert (q1, med, q3) == (2.0, 3.0, 4.0)


class TestReport:
    def test_ascii_cdf_mentions_percentiles(self):
        out = ascii_cdf([1.0, 2.0, 3.0, 4.0], "ratio")
        assert "p 50" in out and "ratio" in out

    def test_box_stats(self):
        s = box_stats([1, 2, 3, 4, 5])
        assert s["median"] == 3 and s["min"] == 1 and s["max"] == 5

    def test_ascii_box_contains_label(self):
        assert "EB" in ascii_box([0.1, 0.5], "EB")

    def test_table_alignment(self):
        out = table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        assert out.splitlines()[0] == "T"
        assert "333" in out

    def test_timeline_renders(self):
        out = timeline([(0.0, 0.016), (0.4, 0.2)], "delays")
        assert "delays" in out and "ms" in out


class TestRunner:
    PATHS = [PathConfig(10, 30, 50), PathConfig(10, 30, 50)]

    def test_run_bulk_result_fields(self):
        res = run_bulk("quic", self.PATHS, 200_000)
        assert res.completed
        assert res.protocol == "quic"
        assert res.goodput_bps == pytest.approx(200_000 * 8 / res.transfer_time)

    def test_repetitions_take_median(self):
        res = run_bulk(
            "quic",
            [PathConfig(10, 30, 50, loss_percent=1.0)],
            200_000,
            repetitions=3,
        )
        assert res.completed
        assert res.repetitions == 3

    def test_deterministic_without_loss(self):
        a = run_bulk("mpquic", self.PATHS, 300_000)
        b = run_bulk("mpquic", self.PATHS, 300_000)
        assert a.transfer_time == b.transfer_time


class TestHandover:
    def test_mpquic_handover_timeline_shape(self):
        """The Fig. 11 shape: low delay, one spike at failure, then the
        second path's RTT."""
        delays = run_handover(HANDOVER_SCENARIO)
        assert len(delays) == HANDOVER_SCENARIO.total_requests
        fail = HANDOVER_SCENARIO.failure_time
        before = [d for t, d in delays if t < fail - 0.5]
        spike = [d for t, d in delays if fail - 0.1 <= t < fail + 0.8]
        after = [d for t, d in delays if t > fail + 1.0]
        # Steady state before: about the 15 ms path RTT.
        assert max(before) < 0.025
        # The affected request pays roughly an RTO (~200 ms), well under
        # a second thanks to the PATHS-frame assisted failover.
        assert spike and 0.05 < max(spike) < 1.0
        # Afterwards: the 25 ms path, still seamless.
        assert after and max(after) < 0.035

    def test_all_requests_eventually_answered_despite_failure(self):
        delays = run_handover(HANDOVER_SCENARIO)
        assert len(delays) == HANDOVER_SCENARIO.total_requests
