"""Planted-defect fixture package (analyzed, never imported)."""
