"""Parallel sweep execution engine with a persistent result cache.

The paper's evaluation is embarrassingly parallel: each class sweep is
a grid of independent, deterministic simulations — one cell per
``(scenario, protocol, initial_interface)``, carrying its own seed.
This module decomposes a sweep into :class:`SweepCell` work units, fans
them out over a ``ProcessPoolExecutor`` and memoises finished cells in
a content-addressed on-disk cache, so regenerating figures or
benchmarks at a scale that was already run is a pure cache hit.

Guarantees:

* **Bit-identical results.**  A cell is executed by the very same
  :func:`repro.experiments.runner.run_bulk` call the serial path makes,
  with the same seeds and the same median selection; only the order of
  execution changes, and results are re-assembled in cell order.
* **Content-addressed caching.**  The cache key hashes everything that
  determines a run's outcome: the scenario's path parameters, the file
  size, protocol and initial interface, repetitions and base seed, the
  full QUIC/TCP endpoint configs, and a results-format version bumped
  whenever the stored schema (or simulation semantics) changes.

The engine is crash-isolated and resumable: a worker process dying
(``BrokenProcessPool``) or a cell raising is retried under a fresh pool
with bounded backoff; cells that keep failing are quarantined into a
reported skip-list instead of sinking the sweep; and every finished
cell is persisted to the cache *immediately*, so an interrupted sweep
resumes from disk instead of restarting.

Environment knobs (also surfaced as ``--jobs`` / ``--no-cache`` on the
``repro.experiments.figures`` CLI):

* ``REPRO_JOBS``  — worker processes (default ``os.cpu_count()``;
  ``1`` forces in-process serial execution).
* ``REPRO_CACHE`` — ``off``/``0``/``false`` disables the on-disk cache.
* ``REPRO_CACHE_DIR`` — cache root (default ``results/cache``).
* ``REPRO_RETRIES`` — retry attempts per failing cell (default 2).
* ``REPRO_QUARANTINE_FILE`` — write the quarantine report (JSON) here
  after every :func:`execute_cells` call.
* ``REPRO_SWEEP_TELEMETRY`` — stream one JSONL record per finished
  cell (runtime, cache hit/miss, attempts, worker pid, events/sec) to
  this sidecar file; see :class:`SweepTelemetry`.
* ``REPRO_PROGRESS`` — force the live progress/ETA line on (it is
  otherwise shown only when stderr is a terminal).
* ``REPRO_CHAOS_CRASH_KEY`` / ``REPRO_CHAOS_MARKER_DIR`` /
  ``REPRO_CHAOS_MODE`` — fault-drill hooks for CI; see
  :func:`_chaos_crash_requested`.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
import time
import warnings
from concurrent.futures import as_completed, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, TextIO, Tuple

from repro.expdesign.parameters import Scenario
from repro.obs import metrics as _metrics
from repro.experiments.runner import (
    DEFAULT_SIM_TIMEOUT,
    BulkRunResult,
    run_bulk,
)
from repro.experiments.workload import (
    WorkloadRunResult,
    WorkloadSpec,
    run_workload,
)
from repro.netsim.faults import FaultTimeline
from repro.netsim.topology import PathConfig
from repro.quic.config import QuicConfig
from repro.tcp.config import TcpConfig

#: A cell's result: closed-loop bulk transfer or open-loop workload.
CellResult = Any

#: Bump when the cached result schema or the simulation semantics
#: change, invalidating every previously stored result.
#: v2: fault timelines became part of a cell's identity.
#: v3: path-liveness probing and lifetime limits entered QuicConfig and
#:     the transport's failure reaction (reinjection) changed semantics.
#: v4: open-loop workload cells (a ``workload`` axis on SweepCell,
#:     kind-tagged result records).
RESULTS_FORMAT_VERSION = 4

#: Default retry attempts for a crashed or raising cell (on top of the
#: first attempt); override per call or via ``REPRO_RETRIES``.
DEFAULT_RETRIES = 2
#: Bounded backoff between retry rounds, seconds (wall clock — this is
#: harness code, not simulation).
RETRY_BACKOFF_BASE = 0.25
RETRY_BACKOFF_MAX = 2.0

#: Bounds on stored quarantine evidence: error/traceback strings are
#: clipped and only the most recent attempts are kept, so a cell that
#: fails hundreds of times cannot bloat the skip-list or its report.
MAX_QUARANTINE_ERROR_CHARS = 1000
MAX_QUARANTINE_ERRORS = 5


def backoff_delay(round_no: int) -> float:
    """Bounded-exponential retry delay for round ``round_no`` (>= 1).

    Shared by the in-process retry loop and the distributed workers,
    so both back off identically.
    """
    return min(RETRY_BACKOFF_BASE * 2 ** (round_no - 1), RETRY_BACKOFF_MAX)


def clip_error(error: str) -> str:
    """Clip an error/traceback string to the stored evidence bound."""
    if len(error) <= MAX_QUARANTINE_ERROR_CHARS:
        return error
    return (
        error[:MAX_QUARANTINE_ERROR_CHARS]
        + f"... [clipped {len(error) - MAX_QUARANTINE_ERROR_CHARS} chars]"
    )

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join("results", "cache")

#: Protocol matrix of the paper's sweep (§4.1).
SWEEP_PROTOCOLS = ("tcp", "quic", "mptcp", "mpquic")


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepCell:
    """One independent simulation unit of a class sweep.

    Everything needed to reproduce the run (and to address its cached
    result) lives here; cells are picklable and cheap to ship to worker
    processes.
    """

    paths: Tuple[PathConfig, ...]
    protocol: str
    initial_interface: int
    file_size: int
    repetitions: int
    base_seed: int
    timeout: float = DEFAULT_SIM_TIMEOUT
    quic_config: Optional[QuicConfig] = None
    tcp_config: Optional[TcpConfig] = None
    #: Network dynamics injected into every repetition; part of the
    #: cell's identity, so the same static scenario under different
    #: fault timelines never collides in the cache.
    timeline: Optional[FaultTimeline] = None
    #: Open-loop workload axis: when set, the cell runs
    #: :func:`repro.experiments.workload.run_workload` over
    #: ``paths[0]`` instead of a closed-loop bulk transfer
    #: (``file_size``/``repetitions``/``initial_interface`` are then
    #: inert; the spec carries its own seed and flow plan).
    workload: Optional[WorkloadSpec] = None

    def key_material(self) -> Dict:
        """The canonical dict whose hash addresses this cell's result."""
        return {
            "format": RESULTS_FORMAT_VERSION,
            "paths": [asdict(p) for p in self.paths],
            "protocol": self.protocol,
            "initial_interface": self.initial_interface,
            "file_size": self.file_size,
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
            "timeout": self.timeout,
            "quic_config": asdict(self.quic_config) if self.quic_config else None,
            "tcp_config": asdict(self.tcp_config) if self.tcp_config else None,
            "timeline": (
                self.timeline.key_material() if self.timeline else None
            ),
            "workload": asdict(self.workload) if self.workload else None,
        }

    def cache_key(self) -> str:
        canonical = json.dumps(self.key_material(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()


def plan_class_sweep(
    scenarios: Sequence[Scenario],
    file_size: int,
    lossy: bool,
    protocols: Sequence[str] = SWEEP_PROTOCOLS,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
) -> List[SweepCell]:
    """Decompose a class sweep into cells, in deterministic order.

    The order (scenario-major, then protocol, then initial interface)
    matches the serial loop in the figure harness, so zipping the
    results back against this plan reproduces the serial structure.
    """
    reps = 3 if lossy else 1
    cells: List[SweepCell] = []
    for scenario in scenarios:
        for protocol in protocols:
            for initial in (0, 1):
                cells.append(
                    SweepCell(
                        paths=tuple(scenario.paths),
                        protocol=protocol,
                        initial_interface=initial,
                        file_size=file_size,
                        repetitions=reps,
                        base_seed=scenario.index + 1,
                        quic_config=quic_config,
                        tcp_config=tcp_config,
                    )
                )
    return cells


def plan_workload_sweep(
    specs: Sequence[WorkloadSpec],
    bottleneck: PathConfig,
    protocols: Sequence[str] = SWEEP_PROTOCOLS,
    quic_config: Optional[QuicConfig] = None,
    tcp_config: Optional[TcpConfig] = None,
    timeout: float = 600.0,
) -> List[SweepCell]:
    """Decompose an open-loop workload study into cells.

    Spec-major, then protocol — so each workload's flow plan (identical
    across protocols by construction, the specs carry the seeds) is
    replayed against every protocol before the next spec runs.
    """
    cells: List[SweepCell] = []
    for spec in specs:
        for protocol in protocols:
            cells.append(
                SweepCell(
                    paths=(bottleneck,),
                    protocol=protocol,
                    initial_interface=0,
                    file_size=spec.mean_size,
                    repetitions=1,
                    base_seed=spec.seed,
                    timeout=timeout,
                    quic_config=quic_config,
                    tcp_config=tcp_config,
                    workload=spec,
                )
            )
    return cells


def _chaos_crash_requested(cell: SweepCell) -> bool:
    """CI fault-drill hook: should this cell simulate a worker crash?

    Active when ``REPRO_CHAOS_CRASH_KEY`` is a prefix of the cell's
    cache key.  With ``REPRO_CHAOS_MARKER_DIR`` set, each cell crashes
    at most once (a marker file records the first crash), so the
    retry machinery completes the sweep; without it the cell crashes on
    every attempt and ends up quarantined.  ``REPRO_CHAOS_MODE=raise``
    raises instead of killing the process — the in-process variant used
    by tests running with ``jobs=1``.
    """
    key_prefix = os.environ.get("REPRO_CHAOS_CRASH_KEY")  # repro: allow[sweep-purity] chaos hook is crash-only, never shapes results
    if not key_prefix or not cell.cache_key().startswith(key_prefix):
        return False
    marker_dir = os.environ.get("REPRO_CHAOS_MARKER_DIR")  # repro: allow[sweep-purity] chaos hook is crash-only, never shapes results
    if marker_dir:
        marker = Path(marker_dir) / cell.cache_key()
        if marker.exists():
            return False
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.touch()
    return True


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one cell — the worker entry point (must be picklable)."""
    if _chaos_crash_requested(cell):
        if os.environ.get("REPRO_CHAOS_MODE") == "raise":  # repro: allow[sweep-purity] chaos hook is crash-only, never shapes results
            raise RuntimeError("chaos drill: simulated cell failure")
        os._exit(17)  # hard death, as a real worker crash would be
    if cell.workload is not None:
        return run_workload(
            cell.workload,
            protocol=cell.protocol,
            bottleneck=cell.paths[0],
            quic_config=cell.quic_config,
            tcp_config=cell.tcp_config,
            timeout=cell.timeout,
        )
    return run_bulk(
        cell.protocol,
        cell.paths,
        cell.file_size,
        initial_interface=cell.initial_interface,
        repetitions=cell.repetitions,
        base_seed=cell.base_seed,
        quic_config=cell.quic_config,
        tcp_config=cell.tcp_config,
        timeout=cell.timeout,
        timeline=cell.timeline,
    )


def _run_cell_timed(cell: SweepCell) -> Tuple[CellResult, float, int]:
    """Worker entry with telemetry: ``(result, wall_seconds, worker_pid)``.

    Timing wraps only the cell's own execution, so pool scheduling and
    result pickling stay out of the per-cell runtime.  The result object
    itself is untouched — cached entries remain bit-identical whether a
    sweep ran with telemetry or without.
    """
    t0 = _metrics.clock()
    result = run_cell(cell)
    return result, _metrics.clock() - t0, os.getpid()


# ----------------------------------------------------------------------
# Result (de)serialisation
# ----------------------------------------------------------------------

def result_to_dict(result: CellResult) -> Dict:
    """JSON-serialisable form of a result (traces are not cached).

    Workload results are kind-tagged so a cache entry deserialises to
    the type that produced it; untagged records are bulk results (the
    pre-v4 shape).
    """
    if isinstance(result, WorkloadRunResult):
        data = asdict(result)
        data["kind"] = "workload"
        return data
    return {
        "protocol": result.protocol,
        "initial_interface": result.initial_interface,
        "file_size": result.file_size,
        "transfer_time": result.transfer_time,
        "goodput_bps": result.goodput_bps,
        "completed": result.completed,
        "repetitions": result.repetitions,
        "details": dict(result.details),
        "rep_times": list(result.rep_times),
        "rep_completed": list(result.rep_completed),
        "failed_repetitions": result.failed_repetitions,
    }


def result_from_dict(data: Dict) -> CellResult:
    if data.get("kind") == "workload":
        payload = {k: v for k, v in data.items() if k != "kind"}
        return WorkloadRunResult(**payload)
    return BulkRunResult(
        protocol=data["protocol"],
        initial_interface=data["initial_interface"],
        file_size=data["file_size"],
        transfer_time=data["transfer_time"],
        goodput_bps=data["goodput_bps"],
        completed=data["completed"],
        repetitions=data["repetitions"],
        details=dict(data.get("details", {})),
        rep_times=list(data.get("rep_times", [])),
        rep_completed=list(data.get("rep_completed", [])),
        failed_repetitions=data.get("failed_repetitions", 0),
    )


# ----------------------------------------------------------------------
# On-disk cache
# ----------------------------------------------------------------------

def result_digest(result_data: Dict) -> str:
    """Content digest of a serialised result (canonical JSON, SHA-256).

    The digest covers the result alone — not the key material — so two
    commits of the same cell can be compared byte-for-byte: the sweep
    engine's determinism guarantee means re-executing a cell must
    reproduce the digest exactly.
    """
    canonical = json.dumps(result_data, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultCache:
    """Content-addressed store of finished cells under ``root``.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the
    SHA-256 of the cell's canonical key material; each file stores the
    key material and a content digest alongside the result so entries
    are self-describing and self-verifying.  Writes go through a temp
    file + rename (two-phase commit), so concurrent writers (or an
    interrupted run) never leave a truncated entry behind.

    Reads are hardened: a truncated, garbage or digest-mismatched
    entry counts as a *miss* with a ``RuntimeWarning``, never an
    unhandled exception.  The corrupt file is moved aside to
    ``<entry>.corrupt`` (so a fresh commit can land cleanly) and its
    key is recorded in :attr:`corrupt_keys` as a quarantine candidate
    for the caller's report.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        #: Entries rejected as truncated/garbage/digest-mismatched.
        self.corrupt = 0
        #: Cache keys of rejected entries (quarantine candidates).
        self.corrupt_keys: List[str] = []

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _reject(self, key: str, path: Path, reason: str) -> None:
        """Log and set aside a corrupt entry; it now reads as a miss."""
        self.corrupt += 1
        self.corrupt_keys.append(key)
        try:
            os.replace(path, f"{path}.corrupt")
        except OSError:
            pass
        warnings.warn(
            f"corrupt sweep-cache entry for {key[:12]}... ({reason}); "
            "treating as a miss and quarantining the file aside as "
            f"{path.name}.corrupt",
            RuntimeWarning,
            stacklevel=3,
        )

    def get(self, cell: SweepCell) -> Optional[CellResult]:
        return self.get_key(cell.cache_key())

    def get_key(self, key: str) -> Optional[CellResult]:
        """Key-addressed read (the distributed coordinator's path)."""
        path = self._path(key)
        try:
            with open(path) as fh:
                data = json.load(fh)
        except OSError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._reject(key, path, "not valid JSON")
            self.misses += 1
            return None
        try:
            result_data = data["result"]
            stored = data.get("digest")
            if stored is not None and stored != result_digest(result_data):
                raise ValueError("content digest mismatch")
            result = result_from_dict(result_data)
        except (KeyError, TypeError, ValueError) as exc:
            self._reject(key, path, str(exc) or type(exc).__name__)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, cell: SweepCell, result: CellResult) -> None:
        key = cell.cache_key()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        result_data = result_to_dict(result)
        payload = {"key_material": cell.key_material(),
                   "result": result_data,
                   "digest": result_digest(result_data)}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def cache_enabled() -> bool:
    """Whether ``REPRO_CACHE`` permits the on-disk cache."""
    return os.environ.get("REPRO_CACHE", "on").lower() not in (
        "off", "0", "false", "no"
    )


def default_cache() -> Optional[ResultCache]:
    """The cache configured by the environment, or None if disabled."""
    if not cache_enabled():
        return None
    return ResultCache(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is not None:
        return max(1, jobs)
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def resolve_retries(retries: Optional[int] = None) -> int:
    """Retries per failing cell: explicit arg > ``REPRO_RETRIES`` > default."""
    if retries is not None:
        return max(0, retries)
    env = os.environ.get("REPRO_RETRIES")
    if env:
        return max(0, int(env))
    return DEFAULT_RETRIES


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------

@dataclass
class SweepStats:
    """Accounting of one :func:`execute_cells` invocation."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    jobs: int = 1
    #: Sum of simulator events over executed (non-cached) cells.
    events_processed: int = 0
    #: Cell attempts beyond the first (crash/exception recovery).
    retries: int = 0
    #: Cells that exhausted every attempt and were skipped.
    quarantined: int = 0
    #: Worker pools torn down by a crashed worker and rebuilt.
    pool_restarts: int = 0

    def merge(self, other: "SweepStats") -> None:
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.executed += other.executed
        self.events_processed += other.events_processed
        self.jobs = max(self.jobs, other.jobs)
        self.retries += other.retries
        self.quarantined += other.quarantined
        self.pool_restarts += other.pool_restarts


#: Stats of the most recent :func:`execute_cells` call (observability
#: convenience for benchmarks and the CLI; also available by passing
#: ``stats=`` explicitly).
last_stats = SweepStats()

#: Quarantine entries of the most recent :func:`execute_cells` call.
last_quarantine: List[Dict] = []


def dedupe_quarantine(entries: List[Dict]) -> List[Dict]:
    """Collapse a quarantine skip-list to one entry per cache key.

    Later entries win (they carry the most recent attempt counts), and
    stored error evidence is re-clipped to the configured bounds, so a
    report assembled across repeated retry rounds or multiple sweep
    invocations never grows duplicates or unbounded tracebacks.
    """
    by_key: Dict[str, Dict] = {}
    for entry in entries:
        key = entry.get("cache_key", "")
        merged = dict(entry)
        errors = [clip_error(e) for e in merged.get("errors", [])]
        merged["errors"] = errors[-MAX_QUARANTINE_ERRORS:]
        by_key[key] = merged
    return list(by_key.values())


def write_quarantine_report(path: os.PathLike, entries: List[Dict]) -> None:
    """Atomically write the quarantine skip-list as JSON.

    Written even when empty so CI can always upload the artifact and a
    clean run is distinguishable from a run that never reported.
    Entries are deduplicated by cache key and their stored evidence
    bounded (see :func:`dedupe_quarantine`).
    """
    entries = dedupe_quarantine(entries)
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": RESULTS_FORMAT_VERSION,
        "quarantined_cells": len(entries),
        "quarantined": entries,
    }
    fd, tmp = tempfile.mkstemp(dir=target.parent or None, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class SweepTelemetry:
    """Streams per-cell sweep telemetry to a JSONL sidecar.

    Record types (``"record"`` field):

    * ``sweep_start`` — one per :func:`execute_cells` call: cell count,
      worker count, format version.
    * ``cell`` — exactly one *terminal* record per cell, whether it was
      served from cache (``status="cached"``), executed
      (``"executed"``, with wall seconds, worker pid, attempt count and
      events/sec) or gave up (``"quarantined"``).
    * ``attempt_failed`` — one per failed attempt (crash or exception),
      before the cell's terminal record.
    * ``sweep_end`` — closing totals mirroring :class:`SweepStats`.

    The sidecar is opened in append mode, so a figure run spanning
    several class sweeps accumulates one ``sweep_start``/``sweep_end``
    block per sweep in a single file.  Each record is one line written
    by a single ``os.write`` on an ``O_APPEND`` descriptor — the
    kernel guarantee that makes appends *line-atomic*: concurrent
    writers sharing one sidecar (threads, or the distributed sweep's
    worker processes) never interleave partial lines, a killed sweep
    leaves a readable prefix, and ``tail -f`` follows a live one.

    A progress/ETA line is maintained on ``stream`` (default: stderr
    when it is a terminal, or always under ``REPRO_PROGRESS=1``).  The
    ETA extrapolates from the mean wall time of the cells finished so
    far — coarse, but it needs no knowledge of cache hit rates ahead
    of time.
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        total: int = 0,
        jobs: int = 1,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total = total
        self.jobs = jobs
        self.done = 0
        self.cell_records = 0
        self._t0 = _metrics.clock()
        self._fd: Optional[int] = None
        self._stream = stream
        if path is not None:
            target = Path(path)
            if str(target.parent) not in ("", "."):
                target.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        self._write(
            {
                "record": "sweep_start",
                "format": RESULTS_FORMAT_VERSION,
                "cells": total,
                "jobs": jobs,
            }
        )

    def _write(self, record: Dict[str, Any]) -> None:
        # One os.write per record: O_APPEND appends are atomic at the
        # kernel level, so concurrent writers never interleave lines
        # (and there is no userspace buffer to flush or lose).
        if self._fd is not None:
            line = json.dumps(record, sort_keys=True) + "\n"
            os.write(self._fd, line.encode())

    def _progress(self) -> None:
        if self._stream is None:
            return
        elapsed = _metrics.clock() - self._t0
        remaining = self.total - self.done
        eta = elapsed / self.done * remaining if self.done else float("nan")
        self._stream.write(
            f"\rsweep [{self.done}/{self.total}] "
            f"elapsed={elapsed:6.1f}s eta={eta:6.1f}s"
        )
        if self.done >= self.total:
            self._stream.write("\n")
        self._stream.flush()

    def cell(
        self,
        index: int,
        cell: SweepCell,
        status: str,
        wall_seconds: float = 0.0,
        worker_pid: Optional[int] = None,
        attempts: int = 1,
        events: int = 0,
        error: Optional[str] = None,
    ) -> None:
        """Terminal record for one cell; drives the progress line."""
        record: Dict[str, Any] = {
            "record": "cell",
            "index": index,
            "cache_key": cell.cache_key(),
            "protocol": cell.protocol,
            "initial_interface": cell.initial_interface,
            "base_seed": cell.base_seed,
            "status": status,
            "wall_seconds": round(wall_seconds, 6),
            "attempts": attempts,
        }
        if worker_pid is not None:
            record["worker_pid"] = worker_pid
        if events:
            record["events"] = events
            if wall_seconds > 0:
                record["events_per_second"] = round(events / wall_seconds)
        if error is not None:
            record["error"] = error
        self._write(record)
        self.cell_records += 1
        self.done += 1
        self._progress()

    def attempt_failed(self, index: int, attempt: int, error: str) -> None:
        self._write(
            {
                "record": "attempt_failed",
                "index": index,
                "attempt": attempt,
                "error": error,
            }
        )

    def close(self, stats: SweepStats) -> None:
        self._write(
            {
                "record": "sweep_end",
                "cells": stats.cells,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "executed": stats.executed,
                "events_processed": stats.events_processed,
                "retries": stats.retries,
                "quarantined": stats.quarantined,
                "pool_restarts": stats.pool_restarts,
                "wall_seconds": round(_metrics.clock() - self._t0, 6),
            }
        )
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


def _progress_stream() -> Optional[TextIO]:
    """stderr when it wants a progress line (tty, or forced by env)."""
    if os.environ.get("REPRO_PROGRESS", "").lower() in ("1", "on", "true", "yes"):
        return sys.stderr
    try:
        if sys.stderr.isatty():
            return sys.stderr
    except (AttributeError, ValueError):
        pass
    return None


def default_telemetry(total: int, jobs: int) -> Optional[SweepTelemetry]:
    """Telemetry configured by the environment, or None when silent.

    Active when ``REPRO_SWEEP_TELEMETRY`` names a sidecar path and/or a
    progress line is wanted (tty stderr or ``REPRO_PROGRESS=1``).
    """
    path = os.environ.get("REPRO_SWEEP_TELEMETRY", "").strip() or None
    stream = _progress_stream()
    if path is None and stream is None:
        return None
    return SweepTelemetry(path, total, jobs, stream=stream)


def execute_cells(
    cells: Sequence[SweepCell],
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = "auto",  # type: ignore[assignment]
    stats: Optional[SweepStats] = None,
    retries: Optional[int] = None,
    telemetry: Optional[SweepTelemetry] = "auto",  # type: ignore[assignment]
) -> List[Optional[CellResult]]:
    """Run every cell, returning results aligned with ``cells``.

    Cached cells are served from disk; the rest are executed — in a
    worker pool when ``jobs > 1``, in-process otherwise — and stored
    back.  Results are bit-identical to running each cell serially:
    each worker performs the exact same ``run_bulk`` call, and ordering
    is restored from the plan, not from completion order.

    Crash isolation: a worker dying (``BrokenProcessPool``) or a cell
    raising fails only that round's affected cells; they are retried up
    to ``retries`` more times (``REPRO_RETRIES``, default 2) under a
    fresh pool with bounded backoff.  Cells failing every attempt are
    quarantined — their result slot is ``None``, the skip-list lands in
    :data:`last_quarantine` (and ``REPRO_QUARANTINE_FILE`` when set),
    and a ``RuntimeWarning`` reports the count.  Finished cells are
    written to the cache immediately, so an interrupted sweep resumes
    from disk.

    ``cache="auto"`` resolves via :func:`default_cache` (honouring
    ``REPRO_CACHE``); pass ``None`` to bypass caching explicitly.
    ``telemetry="auto"`` resolves via :func:`default_telemetry`
    (honouring ``REPRO_SWEEP_TELEMETRY`` / ``REPRO_PROGRESS``); pass
    ``None`` to silence it or a :class:`SweepTelemetry` to direct it.
    """
    global last_stats, last_quarantine
    if cache == "auto":
        cache = default_cache()
    jobs = resolve_jobs(jobs)
    if telemetry == "auto":
        telemetry = default_telemetry(len(cells), jobs)
    stats = stats if stats is not None else SweepStats()
    stats.cells += len(cells)
    stats.jobs = max(stats.jobs, jobs)
    quarantined: List[Dict] = []

    try:
        results: List[Optional[CellResult]] = [None] * len(cells)
        missing: List[int] = []
        for i, cell in enumerate(cells):
            cached = cache.get(cell) if cache is not None else None
            if cached is not None:
                results[i] = cached
                if telemetry is not None:
                    telemetry.cell(i, cell, "cached")
            else:
                missing.append(i)
        if cache is not None:
            stats.cache_hits += len(cells) - len(missing)
            stats.cache_misses += len(missing)

        if missing:
            max_attempts = resolve_retries(retries) + 1
            errors: Dict[int, List[str]] = {}

            def on_success(
                i: int, result: CellResult, wall: float, pid: int
            ) -> None:
                results[i] = result
                # Persist immediately: an interrupted sweep resumes from
                # whatever completed, not from scratch.
                if cache is not None:
                    cache.put(cells[i], result)
                stats.executed += 1
                events = int(result.details.get("sim_events", 0))
                stats.events_processed += events
                if telemetry is not None:
                    telemetry.cell(
                        i, cells[i], "executed",
                        wall_seconds=wall, worker_pid=pid,
                        attempts=len(errors.get(i, [])) + 1, events=events,
                    )

            pending = [(i, cells[i]) for i in missing]
            round_no = 0
            while pending:
                if round_no > 0:
                    stats.retries += len(pending)
                    time.sleep(backoff_delay(round_no))
                failures = _run_round(
                    pending, jobs, on_success, stats, isolate=round_no > 0
                )
                still: List[Tuple[int, SweepCell]] = []
                for i, cell in pending:
                    if i not in failures:
                        continue
                    errors.setdefault(i, []).append(clip_error(failures[i]))
                    if telemetry is not None:
                        telemetry.attempt_failed(
                            i, len(errors[i]), failures[i]
                        )
                    if len(errors[i]) >= max_attempts:
                        quarantined.append(
                            {
                                "index": i,
                                "cache_key": cell.cache_key(),
                                "protocol": cell.protocol,
                                "initial_interface": cell.initial_interface,
                                "base_seed": cell.base_seed,
                                "attempts": len(errors[i]),
                                "errors": errors[i][-MAX_QUARANTINE_ERRORS:],
                            }
                        )
                        if telemetry is not None:
                            telemetry.cell(
                                i, cell, "quarantined",
                                attempts=len(errors[i]),
                                error=errors[i][-1],
                            )
                    else:
                        still.append((i, cell))
                pending = still
                round_no += 1

            stats.quarantined += len(quarantined)
            if quarantined:
                warnings.warn(
                    f"{len(quarantined)} sweep cell(s) quarantined after "
                    f"{max_attempts} failed attempt(s) each; their result "
                    "slots are None (see the quarantine report)",
                    RuntimeWarning,
                    stacklevel=2,
                )
    finally:
        if telemetry is not None:
            telemetry.close(stats)

    last_stats = stats
    last_quarantine = dedupe_quarantine(quarantined)
    report_path = os.environ.get("REPRO_QUARANTINE_FILE")
    if report_path:
        write_quarantine_report(report_path, quarantined)
    return results


#: Per-cell success callback: ``(index, result, wall_seconds, worker_pid)``.
OnSuccess = Callable[[int, CellResult, float, int], None]


def _run_round(
    pending: List[Tuple[int, SweepCell]],
    jobs: int,
    on_success: OnSuccess,
    stats: SweepStats,
    isolate: bool = False,
) -> Dict[int, str]:
    """One execution attempt over ``pending``; failures keyed by index.

    ``isolate`` (retry rounds) runs every cell in its own single-worker
    pool: a worker crash poisons a shared pool's *other* futures too,
    so a cell that crashes on every attempt would otherwise drag its
    innocent round-mates into quarantine with it.
    """
    if jobs > 1 and (isolate or len(pending) > 1):
        try:
            if isolate:
                failures: Dict[int, str] = {}
                for item in pending:
                    failures.update(
                        _run_round_pooled([item], 1, on_success, stats)
                    )
                return failures
            return _run_round_pooled(pending, jobs, on_success, stats)
        except (OSError, PermissionError) as exc:
            # Restricted sandboxes may refuse to spawn processes at
            # all; the sweep still completes, just without parallelism.
            warnings.warn(
                f"process pool unavailable ({exc!r}); falling back to "
                "serial sweep execution",
                RuntimeWarning,
                stacklevel=2,
            )
    return _run_round_serial(pending, on_success)


def _run_round_serial(
    pending: List[Tuple[int, SweepCell]],
    on_success: OnSuccess,
) -> Dict[int, str]:
    failures: Dict[int, str] = {}
    for i, cell in pending:
        try:
            result, wall, pid = _run_cell_timed(cell)
        except Exception as exc:
            # In-process stand-in for a worker crash: record the error
            # for the retry/quarantine machinery and keep going.
            failures[i] = repr(exc)
        else:
            on_success(i, result, wall, pid)
    return failures


def _run_round_pooled(
    pending: List[Tuple[int, SweepCell]],
    jobs: int,
    on_success: OnSuccess,
    stats: SweepStats,
) -> Dict[int, str]:
    """Fan one round out over a fresh process pool.

    A dead worker poisons the whole pool (every outstanding future gets
    ``BrokenProcessPool``); affected cells are recorded as failures and
    the caller retries them under a new pool next round.
    """
    failures: Dict[int, str] = {}
    broken = False
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures: Dict = {}
        for idx, (i, cell) in enumerate(pending):
            try:
                futures[pool.submit(_run_cell_timed, cell)] = i
            except BrokenProcessPool as exc:
                broken = True
                for j, _ in pending[idx:]:
                    failures[j] = repr(exc)
                break
        for future in as_completed(futures):
            i = futures[future]
            try:
                result, wall, pid = future.result()
            except BrokenProcessPool as exc:
                broken = True
                failures[i] = repr(exc)
            except Exception as exc:
                failures[i] = repr(exc)
            else:
                on_success(i, result, wall, pid)
    if broken:
        stats.pool_restarts += 1
    return failures


def execute_class_sweep(
    scenarios: Sequence[Scenario],
    file_size: int,
    lossy: bool,
    jobs: Optional[int] = None,
    cache: Optional[ResultCache] = "auto",  # type: ignore[assignment]
    stats: Optional[SweepStats] = None,
    protocols: Sequence[str] = SWEEP_PROTOCOLS,
) -> List[Tuple[Scenario, Dict[Tuple[str, int], BulkRunResult]]]:
    """Plan, execute and regroup a class sweep.

    Returns the exact structure of the serial figure harness: one
    ``(scenario, {(protocol, initial): BulkRunResult})`` pair per
    scenario, in scenario order.
    """
    cells = plan_class_sweep(scenarios, file_size, lossy, protocols=protocols)
    results = execute_cells(cells, jobs=jobs, cache=cache, stats=stats)
    per_scenario = 2 * len(protocols)
    out: List[Tuple[Scenario, Dict[Tuple[str, int], BulkRunResult]]] = []
    for s_idx, scenario in enumerate(scenarios):
        matrix: Dict[Tuple[str, int], BulkRunResult] = {}
        base = s_idx * per_scenario
        for c_idx in range(per_scenario):
            cell = cells[base + c_idx]
            matrix[(cell.protocol, cell.initial_interface)] = results[base + c_idx]
        out.append((scenario, matrix))
    return out
