"""Reporters for analyzer findings: text, machine JSON, and SARIF.

The JSON document is versioned and round-trippable so CI tooling can
diff findings between runs without re-parsing analyzer output.  The
SARIF 2.1.0 document exists for exactly one consumer: GitHub code
scanning, which renders findings as inline PR annotations when the
lint job uploads it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.core import Finding, all_project_rules, all_rules

#: Bump on any backwards-incompatible change to the JSON layout.
REPORT_VERSION = 1


def render_text(findings: Sequence[Finding], files_analyzed: int) -> str:
    """Conventional compiler-style ``path:line:col: [rule] message``."""
    lines = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"{len(findings)} {noun} in {files_analyzed} file(s) analyzed"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_analyzed: int) -> str:
    document: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "files_analyzed": files_analyzed,
        "count": len(findings),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def findings_from_json(text: str) -> List[Finding]:
    """Parse a JSON report back into findings (schema round-trip)."""
    document = json.loads(text)
    version = document.get("version")
    if version != REPORT_VERSION:
        raise ValueError(f"unsupported report version: {version!r}")
    out = [
        Finding(
            path=entry["path"],
            line=int(entry["line"]),
            col=int(entry["col"]),
            rule=entry["rule"],
            message=entry["message"],
        )
        for entry in document["findings"]
    ]
    if len(out) != document.get("count"):
        raise ValueError("report count does not match findings array")
    return out


def render_rule_list() -> str:
    """The registered rule catalog for ``--list-rules``."""
    lines = []
    catalog: Dict[str, Any] = dict(all_rules())
    catalog.update(all_project_rules())
    for rule_id, rule_cls in sorted(catalog.items()):
        lines.append(f"{rule_id}: {rule_cls.rationale}")
    return "\n".join(lines)


#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 document for GitHub code-scanning upload.

    Every registered rule (per-module and whole-program) appears in the
    tool's rule table so suppressed-to-zero runs still publish the
    catalog; results reference rules by index as the spec recommends.
    Paths are emitted as given (CI runs from the repo root, so they are
    repo-relative there).
    """
    catalog: Dict[str, Any] = dict(all_rules())
    catalog.update(all_project_rules())
    rule_ids = sorted(catalog)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": rule_id},
            "fullDescription": {"text": catalog[rule_id].rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": f.rule,
            # Unregistered ids (never expected) would break the index
            # contract, so fall back to omitting ruleIndex for them.
            **(
                {"ruleIndex": rule_index[f.rule]}
                if f.rule in rule_index
                else {}
            ),
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": max(f.col, 1),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "version": str(REPORT_VERSION),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
