"""E3 / Fig. 5 — low-BDP-losses: time-ratio CDFs.

Paper shape: with random losses, (MP)QUIC nearly always beats (MP)TCP
thanks to richer ACK information (256 ranges vs 3 SACK blocks) and
unambiguous RTT estimates.
"""

from repro.experiments.figures import fig5
from repro.experiments.metrics import fraction_greater_than, median

from benchmarks.common import BENCH_CONFIG, run_once


def test_fig5_lossy_ratio(benchmark):
    series = run_once(benchmark, lambda: fig5(BENCH_CONFIG))
    tcp_quic = series["tcp/quic"]
    # Single path under loss: QUIC clearly wins (paper: almost always).
    assert fraction_greater_than(tcp_quic, 1.0) >= 0.8
    assert median(tcp_quic) > 1.15
    # Multipath under loss: MPQUIC at least competitive with MPTCP.
    # (Shape note: the paper shows a clear MPQUIC win; our OLIA model
    # reaches parity — see EXPERIMENTS.md.)
    assert median(series["mptcp/mpquic"]) > 0.75
