"""CLI: ``python -m repro.analysis [paths...]``.

Exit status is 0 on a clean tree, 1 when findings remain, 2 on usage
errors — so the command slots directly into CI as a required gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import analyze_paths
from repro.analysis.report import render_json, render_rule_list, render_text


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism and protocol-invariant static analyzer.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    select = [r.strip() for r in args.select.split(",") if r.strip()]
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            "error: no such path(s): " + ", ".join(str(p) for p in missing),
            file=sys.stderr,
        )
        return 2
    try:
        findings, files_analyzed = analyze_paths(paths, select=select)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings, files_analyzed))
    else:
        print(render_text(findings, files_analyzed))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
