"""A5 — shared-bottleneck fairness: why the paper integrates OLIA (§3).

One MPQUIC connection whose two paths cross the same bottleneck,
racing one single-path QUIC flow.  Coupled OLIA should take about one
fair share; uncoupled CUBIC noticeably more.
"""

from repro.experiments.fairness import run_fairness

from benchmarks.common import run_once


def test_bottleneck_fairness(benchmark):
    def run():
        return {
            cc: run_fairness(multipath_cc=cc, duration=15.0)
            for cc in ("olia", "cubic2")
        }

    results = run_once(benchmark, run)
    olia, cubic = results["olia"], results["cubic2"]
    print(
        f"\nbottleneck share: OLIA {olia.mp_share:.2f}, "
        f"uncoupled CUBIC {cubic.mp_share:.2f}"
    )
    assert 0.30 <= olia.mp_share <= 0.60
    assert cubic.mp_share > olia.mp_share + 0.05
