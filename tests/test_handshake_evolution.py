"""Tests for TLS 1.3, TCP Fast Open and QUIC 0-RTT (§4.2's outlook).

The paper notes that TCP's 3-RTT setup "could be reduced by using the
emerging TLS 1.3 and TCP Fast Open"; these tests pin down the setup
cost of each combination.
"""


from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology
from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpConnection

from tests.helpers import run_transfer

RTT = 0.04
PATH = PathConfig(10, 40, 50)


def tcp_setup_time(cfg):
    sim = Simulator()
    topo = TwoPathTopology(sim, [PATH], seed=1)
    client = TcpConnection(sim, topo.client, "client", cfg)
    server = TcpConnection(sim, topo.server, "server", cfg)
    out = {}
    client.on_established = lambda: out.update(t=sim.now)
    client.connect()
    sim.run(until=2.0)
    assert server.secure_established
    return out["t"]


class TestTlsVersions:
    def test_tls12_costs_three_rtt(self):
        t = tcp_setup_time(TcpConfig(tls_version="1.2"))
        assert 3 * RTT <= t < 4.2 * RTT

    def test_tls13_costs_two_rtt(self):
        t = tcp_setup_time(TcpConfig(tls_version="1.3"))
        assert 2 * RTT <= t < 2.9 * RTT

    def test_tfo_with_tls13_costs_one_rtt(self):
        t = tcp_setup_time(TcpConfig(tls_version="1.3", fast_open=True))
        assert 1 * RTT <= t < 1.9 * RTT

    def test_tfo_with_tls12_costs_two_rtt(self):
        t = tcp_setup_time(TcpConfig(tls_version="1.2", fast_open=True))
        assert 2 * RTT <= t < 2.9 * RTT

    def test_transfers_complete_under_all_combinations(self):
        for version in ("1.2", "1.3"):
            for tfo in (False, True):
                cfg = TcpConfig(tls_version=version, fast_open=tfo)
                result = run_transfer(
                    "tcp", [PATH], file_size=150_000, tcp_config=cfg
                )
                assert result.ok, (version, tfo)
                assert result.app.bytes_received == 150_000

    def test_tfo_survives_syn_loss(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, [PATH], seed=1)
        cfg = TcpConfig(tls_version="1.3", fast_open=True)
        client = TcpConnection(sim, topo.client, "client", cfg)
        TcpConnection(sim, topo.server, "server", cfg)
        topo.forward_links[0].set_loss_rate(1.0)
        client.connect()
        sim.run(until=0.5)
        topo.forward_links[0].set_loss_rate(0.0)
        sim.run(until=5.0)
        assert client.secure_established

    def test_tfo_survives_synack_loss(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, [PATH], seed=1)
        cfg = TcpConfig(tls_version="1.3", fast_open=True)
        client = TcpConnection(sim, topo.client, "client", cfg)
        TcpConnection(sim, topo.server, "server", cfg)
        topo.return_links[0].set_loss_rate(1.0)
        client.connect()
        sim.run(until=0.5)
        topo.return_links[0].set_loss_rate(0.0)
        sim.run(until=5.0)
        assert client.secure_established


class TestZeroRttQuic:
    def test_client_usable_immediately(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, [PATH], seed=1)
        cfg = QuicConfig(zero_rtt=True)
        client = QuicConnection(sim, topo.client, "client", cfg)
        QuicConnection(sim, topo.server, "server", QuicConfig())
        out = {}
        client.on_established = lambda: out.update(t=sim.now)
        client.connect()
        assert out["t"] == 0.0

    def test_request_data_arrives_with_handshake(self):
        sim = Simulator()
        topo = TwoPathTopology(sim, [PATH], seed=1)
        client = QuicConnection(sim, topo.client, "client", QuicConfig(zero_rtt=True))
        server = QuicConnection(sim, topo.server, "server", QuicConfig())
        got = {}
        server.on_stream_data = lambda sid, d, fin: got.update(t=sim.now, data=d)
        client.on_established = lambda: client.send_stream_data(
            client.open_stream(), b"GET /", fin=True
        )
        client.connect()
        sim.run(until=1.0)
        # The request arrives half an RTT after connect (with the CHLO).
        assert got["t"] < RTT
        assert got["data"] == b"GET /"

    def test_zero_rtt_transfer_faster_than_one_rtt(self):
        fast = run_transfer(
            "quic", [PATH], file_size=20_000,
            quic_config=QuicConfig(zero_rtt=True),
        )
        normal = run_transfer(
            "quic", [PATH], file_size=20_000, quic_config=QuicConfig()
        )
        assert normal.transfer_time - fast.transfer_time > RTT * 0.8
