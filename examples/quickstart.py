#!/usr/bin/env python3
"""Quickstart: download a file over Multipath QUIC on a two-path network.

Builds the paper's evaluation topology (two disjoint paths, Fig. 2),
runs a 2 MB download over MPQUIC and prints how the traffic spread
across the paths.

Run:  python examples/quickstart.py
"""

from repro.apps.bulk import BulkTransferApp
from repro.apps.transport import make_client_server
from repro.netsim.engine import Simulator
from repro.netsim.topology import PathConfig, TwoPathTopology


def main() -> None:
    sim = Simulator()
    # A WiFi-like path and an LTE-like path, as in the paper's intro.
    topology = TwoPathTopology(
        sim,
        [
            PathConfig(capacity_mbps=20.0, rtt_ms=30.0, queuing_delay_ms=60.0),
            PathConfig(capacity_mbps=8.0, rtt_ms=70.0, queuing_delay_ms=120.0),
        ],
        seed=1,
    )
    client, server = make_client_server("mpquic", sim, topology)
    app = BulkTransferApp(sim, client, server, file_size=2_000_000)
    if not app.run():
        raise SystemExit("transfer did not complete")

    print(f"Downloaded {app.bytes_received} bytes in {app.transfer_time:.3f} s")
    print(f"Goodput: {app.goodput_bps / 1e6:.2f} Mbps "
          f"(path capacities: 20 + 8 Mbps)")
    print("\nPer-path breakdown (server side):")
    for path_id, stats in server.connection.path_stats().items():
        print(
            f"  path {path_id}: {stats['packets_sent']:.0f} packets,"
            f" {stats['bytes_sent'] / 1e6:.2f} MB,"
            f" srtt {stats['srtt'] * 1e3:.1f} ms,"
            f" {stats['lost']:.0f} lost"
        )


if __name__ == "__main__":
    main()
