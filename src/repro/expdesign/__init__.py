"""Experimental design: WSP space-filling parameter selection.

The paper follows Paasch et al. (CoNEXT'13), choosing network scenarios
with the WSP algorithm (Santiago et al. 2012) over the ranges of its
Table 1, grouped into four environment classes.
"""

from repro.expdesign.wsp import wsp_select
from repro.expdesign.parameters import (
    ENV_CLASSES,
    EnvClass,
    Scenario,
    generate_scenarios,
)

__all__ = [
    "wsp_select",
    "ENV_CLASSES",
    "EnvClass",
    "Scenario",
    "generate_scenarios",
]
