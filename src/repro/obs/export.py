"""Trace exporters: qlog-flavoured JSON, JSONL streaming, CSV series.

Three output shapes for three consumers:

* :func:`to_qlog` / :func:`write_qlog_json` — a qlog-inspired document
  (one trace per vantage point/host, events as ``{time, name, data}``)
  for offline inspection with generic JSON tooling;
* :func:`write_jsonl` / :func:`read_jsonl` — an append-only line
  stream that round-trips back into a :class:`~repro.obs.events.Tracer`
  (this is what ``python -m repro.obs report`` consumes);
* :func:`write_csv_series` — the per-path time series (cwnd, srtt,
  bytes-in-flight, ...) in long form for spreadsheet/pandas plotting.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, IO, Iterable, List, Union

from repro.obs.events import Event, Tracer

PathLike = Union[str, os.PathLike]

QLOG_VERSION = "0.3"


def _event_to_obj(ev: Event) -> Dict[str, Any]:
    return {
        "time": ev.time,
        "name": ev.type,
        "path_id": ev.path_id,
        "data": dict(ev.data),
    }


def to_qlog(tracer: Tracer, title: str = "repro trace") -> Dict[str, Any]:
    """Render the trace as a qlog-style document.

    One entry in ``traces`` per vantage point (host), each holding its
    event list, per-path time series and scheduler histogram.
    """
    hosts: List[str] = []
    for ev in tracer.events:
        if ev.host not in hosts:
            hosts.append(ev.host)
    for host, _, _ in tracer.series:
        if host not in hosts:
            hosts.append(host)
    traces = []
    for host in hosts:
        series = {
            f"path{path_id}:{metric}": points
            for (h, path_id, metric), points in tracer.series.items()
            if h == host
        }
        histogram = {
            str(path_id): count
            for (h, path_id), count in tracer.scheduler_decisions.items()
            if h == host
        }
        traces.append(
            {
                "vantage_point": {"name": host, "type": "unknown"},
                "events": [
                    _event_to_obj(ev) for ev in tracer.events if ev.host == host
                ],
                "time_series": series,
                "scheduler_decisions": histogram,
            }
        )
    return {
        "qlog_version": QLOG_VERSION,
        "title": title,
        "traces": traces,
    }


def write_qlog_json(tracer: Tracer, dest: Union[PathLike, IO[str]], title: str = "repro trace") -> None:
    """Write :func:`to_qlog` output as JSON to a path or open file."""
    doc = to_qlog(tracer, title=title)
    if hasattr(dest, "write"):
        json.dump(doc, dest, indent=1)
    else:
        with open(dest, "w") as fh:
            json.dump(doc, fh, indent=1)


# -- JSONL streaming --------------------------------------------------------


def _jsonl_lines(tracer: Tracer) -> Iterable[str]:
    for ev in tracer.events:
        yield json.dumps(
            {
                "kind": "event",
                "time": ev.time,
                "host": ev.host,
                "category": ev.category,
                "name": ev.name,
                "path_id": ev.path_id,
                "data": dict(ev.data),
            }
        )
    for (host, path_id, metric), points in tracer.series.items():
        for time, value in points:
            yield json.dumps(
                {
                    "kind": "sample",
                    "time": time,
                    "host": host,
                    "path_id": path_id,
                    "metric": metric,
                    "value": value,
                }
            )
    for (host, path_id), count in tracer.scheduler_decisions.items():
        yield json.dumps(
            {
                "kind": "sched_histogram",
                "host": host,
                "path_id": path_id,
                "count": count,
            }
        )


def write_jsonl(tracer: Tracer, dest: Union[PathLike, IO[str]]) -> int:
    """Stream the trace as JSON Lines; returns the line count."""
    if hasattr(dest, "write"):
        n = 0
        for line in _jsonl_lines(tracer):
            dest.write(line + "\n")
            n += 1
        return n
    with open(dest, "w") as fh:
        return write_jsonl(tracer, fh)


def read_jsonl(src: Union[PathLike, IO[str]]) -> Tracer:
    """Reconstruct a :class:`Tracer` from a JSONL export.

    The scheduler histogram is taken from explicit ``sched_histogram``
    lines when present and otherwise rebuilt from ``path_selected``
    events, so both full and event-only streams summarise correctly.
    """
    if not hasattr(src, "read"):
        with open(src) as fh:
            return read_jsonl(fh)
    tracer = Tracer()
    saw_histogram = False
    for line in src:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.get("kind", "event")
        if kind == "event":
            tracer.events.append(
                Event(
                    time=obj["time"],
                    host=obj["host"],
                    category=obj["category"],
                    name=obj["name"],
                    path_id=obj.get("path_id", -1),
                    data=obj.get("data", {}),
                )
            )
        elif kind == "sample":
            key = (obj["host"], obj["path_id"], obj["metric"])
            tracer.series.setdefault(key, []).append((obj["time"], obj["value"]))
        elif kind == "sched_histogram":
            saw_histogram = True
            tracer.scheduler_decisions[(obj["host"], obj["path_id"])] += obj["count"]
    if not saw_histogram:
        for ev in tracer.events:
            if ev.category == "scheduler" and ev.name == "path_selected":
                tracer.scheduler_decisions[(ev.host, ev.path_id)] += 1
    return tracer


# -- CSV time series --------------------------------------------------------


def write_csv_series(tracer: Tracer, dest: Union[PathLike, IO[str]]) -> int:
    """Write every time series in long form; returns data-row count.

    Columns: ``time,host,path_id,metric,value`` — one row per sample,
    ready for pandas ``pivot`` or a spreadsheet chart.
    """
    if not hasattr(dest, "write"):
        with open(dest, "w") as fh:
            return write_csv_series(tracer, fh)
    dest.write("time,host,path_id,metric,value\n")
    rows = 0
    for (host, path_id, metric), points in sorted(tracer.series.items()):
        for time, value in points:
            dest.write(f"{time!r},{host},{path_id},{metric},{value!r}\n")
            rows += 1
    return rows
