"""Single-path QUIC transport.

Implements the (Google-era, pre-IETF) QUIC machinery the paper builds
on: packets carrying frames, per-packet monotonically increasing packet
numbers, rich ACK frames (up to 256 ranges), stream multiplexing with
offset-based reassembly, connection/stream flow control with
WINDOW_UPDATE frames, a 1-RTT secure handshake and modern loss
recovery.  :mod:`repro.core` extends this into Multipath QUIC.
"""

from repro.quic.config import QuicConfig
from repro.quic.connection import QuicConnection
from repro.quic.frames import (
    AckFrame,
    AddAddressFrame,
    ConnectionCloseFrame,
    HandshakeFrame,
    PathInfo,
    PathsFrame,
    PingFrame,
    StreamFrame,
    WindowUpdateFrame,
)
from repro.quic.mux import ConnectionMux
from repro.quic.nonce import PathAwareNonce, SharedNonceSpace
from repro.quic.packet import Packet

__all__ = [
    "QuicConfig",
    "QuicConnection",
    "ConnectionMux",
    "PathAwareNonce",
    "SharedNonceSpace",
    "Packet",
    "StreamFrame",
    "AckFrame",
    "WindowUpdateFrame",
    "PathsFrame",
    "PathInfo",
    "AddAddressFrame",
    "HandshakeFrame",
    "PingFrame",
    "ConnectionCloseFrame",
]
