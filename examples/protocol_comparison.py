#!/usr/bin/env python3
"""Compare TCP, QUIC, MPTCP and MPQUIC on the same network.

Reproduces the flavour of the paper's §4.1 on a single heterogeneous
scenario: a fast low-latency path plus a slow high-latency path, with a
little random loss — the smartphone WiFi+LTE situation that motivates
multipath transports.

Run:  python examples/protocol_comparison.py
"""

from repro.experiments.runner import run_bulk
from repro.netsim.topology import PathConfig

PATHS = [
    PathConfig(capacity_mbps=15.0, rtt_ms=25.0, queuing_delay_ms=50.0,
               loss_percent=0.5),
    PathConfig(capacity_mbps=5.0, rtt_ms=60.0, queuing_delay_ms=100.0,
               loss_percent=1.0),
]
FILE_SIZE = 2_000_000


def main() -> None:
    print(f"GET {FILE_SIZE / 1e6:.0f} MB over "
          f"{PATHS[0].capacity_mbps:.0f}+{PATHS[1].capacity_mbps:.0f} Mbps "
          f"(loss {PATHS[0].loss_percent}%/{PATHS[1].loss_percent}%)\n")
    results = {}
    for protocol in ("tcp", "quic", "mptcp", "mpquic"):
        result = run_bulk(protocol, PATHS, FILE_SIZE, repetitions=3)
        results[protocol] = result
        print(f"  {protocol:7s} {result.transfer_time:7.3f} s "
              f"({result.goodput_bps / 1e6:5.2f} Mbps)")
    print()
    print(f"  TCP/QUIC time ratio:      "
          f"{results['tcp'].transfer_time / results['quic'].transfer_time:.2f}")
    print(f"  MPTCP/MPQUIC time ratio:  "
          f"{results['mptcp'].transfer_time / results['mpquic'].transfer_time:.2f}")
    print(f"  MPQUIC vs best single path speedup: "
          f"{results['quic'].transfer_time / results['mpquic'].transfer_time:.2f}x")


if __name__ == "__main__":
    main()
