"""Opt-in runtime sanitizer (``REPRO_SANITIZE=1``).

Cheap assertion hooks scattered through the transport hot paths —
recovery, flow control, ACK bookkeeping, scheduling and the DES engine
— that verify protocol invariants *while a simulation runs*: per-path
packet numbers strictly monotonic, cwnd never below its floor,
flow-control credit never exceeded, timers never scheduled in the
past, ACK ranges never covering unsent packets.

The hooks are no-ops by default.  Every instrumented call site is
guarded as::

    if _san.SANITIZE:
        _san.check(...)

so a production run pays one module-attribute load and a falsy branch
per site — nothing else (``tests/test_sanitize.py`` pins this wiring).
Enable via the environment (read once at import)::

    REPRO_SANITIZE=1 python -m pytest tests/test_handover_repro.py

or programmatically/with a scope in tests::

    from repro.util import sanitize
    with sanitize.enabled():
        run_simulation()

Violations raise :class:`SanitizerError` (an ``AssertionError``
subclass, so ``pytest.raises(AssertionError)`` also matches).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["SANITIZE", "SanitizerError", "check", "enabled", "sanitizing"]


class SanitizerError(AssertionError):
    """A runtime protocol invariant was violated."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )


#: Global switch.  Call sites must read it as ``sanitize.SANITIZE`` (an
#: attribute access, not a from-import) so :func:`enabled` can flip it
#: for everyone at once.
SANITIZE: bool = _env_enabled()


def check(condition: bool, message: str, **context: Any) -> None:
    """Raise :class:`SanitizerError` unless ``condition`` holds.

    ``context`` values are appended to the message for diagnosis; they
    are only formatted on failure, so passing them is free on the
    success path.
    """
    if condition:
        return
    if context:
        detail = ", ".join(f"{key}={value!r}" for key, value in sorted(context.items()))
        message = f"{message} ({detail})"
    raise SanitizerError(message)


def sanitizing() -> bool:
    """True when the sanitizer is currently active."""
    return SANITIZE


@contextmanager
def enabled(value: bool = True) -> Iterator[None]:
    """Scoped enable (or disable) of the sanitizer, for tests."""
    global SANITIZE
    previous = SANITIZE
    SANITIZE = value
    try:
        yield
    finally:
        SANITIZE = previous
