"""QUIC frames.

Frames are the unit of information inside QUIC packets; packets are
merely their containers (paper §2).  Because frames are independent of
the packets carrying them, a multipath sender may rebind the frames of
a lost packet onto any path — the flexibility MPQUIC's scheduler
exploits (paper §3, *Packet Scheduling*).

Wire sizes follow :mod:`repro.quic.wire`; each frame knows its encoded
size so the simulator can account for bandwidth without serializing
every packet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.quic import wire

#: Maximum number of ACK ranges one ACK frame may carry (paper §4.1:
#: "the ACK frame ... can acknowledge up to 256 packet number ranges").
MAX_ACK_RANGES = 256


class Frame:
    """Base class; concrete frames are frozen dataclasses."""

    #: Frames that must be retransmitted when their packet is lost.
    retransmittable = True

    def wire_size(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class StreamFrame(Frame):
    """Carries ``data`` of stream ``stream_id`` starting at ``offset``."""

    stream_id: int
    offset: int
    data: bytes
    fin: bool = False

    def wire_size(self) -> int:
        return (
            1  # type byte
            + wire.varint_size(self.stream_id)
            + wire.varint_size(self.offset)
            + 2  # explicit 16-bit length
            + len(self.data)
        )

    def __len__(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class AckFrame(Frame):
    """Acknowledges packet numbers received on one path.

    ``ranges`` are half-open ``[start, stop)`` intervals sorted in
    descending order (highest packets first), at most
    :data:`MAX_ACK_RANGES` of them.  ``ack_delay`` is the time the
    receiver held the largest acknowledged packet before acking —
    letting the peer compute unambiguous RTT estimates even when ACKs
    are delayed (paper §2).

    ``path_id`` identifies the packet-number space being acknowledged;
    MPQUIC lets the ACK for one path travel on any other path (§3).
    """

    path_id: int
    largest_acked: int
    ack_delay: float
    ranges: Tuple[Tuple[int, int], ...]

    retransmittable = False

    def __post_init__(self) -> None:
        if len(self.ranges) > MAX_ACK_RANGES:
            raise ValueError(
                f"ACK frame limited to {MAX_ACK_RANGES} ranges, got {len(self.ranges)}"
            )

    def wire_size(self) -> int:
        size = (
            1  # type
            + 1  # path id
            + wire.varint_size(self.largest_acked)
            + 2  # ack delay (microseconds, float16-like)
            + 2  # range count
        )
        for start, stop in self.ranges:
            size += wire.varint_size(stop - start) + wire.varint_size(start)
        return size

    def acked_packet_count(self) -> int:
        return sum(stop - start for start, stop in self.ranges)


@dataclass(frozen=True)
class WindowUpdateFrame(Frame):
    """Advertises a new flow-control limit.

    ``stream_id`` 0 denotes the connection-level window.  MPQUIC sends
    these on *all* paths to dodge receive-buffer deadlocks when one
    path stalls (paper §3, *Packet Scheduling*).
    """

    stream_id: int
    byte_offset: int

    def wire_size(self) -> int:
        return 1 + wire.varint_size(self.stream_id) + 8


@dataclass(frozen=True)
class PathInfo:
    """Per-path statistics carried by a PATHS frame."""

    path_id: int
    rtt_us: int


@dataclass(frozen=True)
class PathsFrame(Frame):
    """Shares the sender's view of its active (and failed) paths.

    Lets a host detect under-performing or broken paths and speeds up
    handover: on path failure, the retransmitted request carries a
    PATHS frame telling the server not to answer on the dead path
    (paper §3 *Path Management* and §4.3).
    """

    active: Tuple[PathInfo, ...]
    failed: Tuple[int, ...] = ()

    def wire_size(self) -> int:
        return 1 + 1 + len(self.active) * (1 + 4) + 1 + len(self.failed)


@dataclass(frozen=True)
class AddAddressFrame(Frame):
    """Advertises one address owned by the sending host.

    Encrypted and authenticated, so it avoids the security concerns of
    MPTCP's cleartext ADD_ADDR (paper §3, *Path Management*).
    """

    address: str

    def wire_size(self) -> int:
        return 1 + 1 + len(self.address.encode())


#: Wire size of a PATH_CHALLENGE / PATH_RESPONSE token, bytes.
PATH_TOKEN_SIZE = 8


@dataclass(frozen=True)
class PathChallengeFrame(Frame):
    """Probes liveness of one path (RFC 9000 §8.2 style).

    Carries an opaque 8-byte token the peer must echo back in a
    PATH_RESPONSE *on the same path*; a matching echo proves the path
    forwards packets in both directions.  Probes are not retransmitted
    on loss — the liveness state machine's backed-off probe timer
    (see :mod:`repro.quic.connection`) is the retry mechanism — so the
    frame never arms the RTO machinery of a path already suspected
    dead.
    """

    data: bytes

    retransmittable = False

    def __post_init__(self) -> None:
        if len(self.data) != PATH_TOKEN_SIZE:
            raise ValueError(
                f"path challenge token must be {PATH_TOKEN_SIZE} bytes, "
                f"got {len(self.data)}"
            )

    def wire_size(self) -> int:
        return 1 + PATH_TOKEN_SIZE


@dataclass(frozen=True)
class PathResponseFrame(Frame):
    """Echoes a PATH_CHALLENGE token, validating the path it rode in on."""

    data: bytes

    retransmittable = False

    def __post_init__(self) -> None:
        if len(self.data) != PATH_TOKEN_SIZE:
            raise ValueError(
                f"path response token must be {PATH_TOKEN_SIZE} bytes, "
                f"got {len(self.data)}"
            )

    def wire_size(self) -> int:
        return 1 + PATH_TOKEN_SIZE


@dataclass(frozen=True)
class PingFrame(Frame):
    """Solicits an ACK; used to probe a path."""

    def wire_size(self) -> int:
        return 1


@dataclass(frozen=True)
class HandshakeFrame(Frame):
    """Crypto handshake message (QUIC crypto, 1-RTT).

    ``kind`` is ``"CHLO"`` (client hello) or ``"SHLO"`` (server hello).
    ``length`` models the size of the real crypto payload.
    """

    kind: str
    length: int = 0

    def wire_size(self) -> int:
        return 1 + 2 + self.length


@dataclass(frozen=True)
class ConnectionCloseFrame(Frame):
    """Terminates the connection.

    Never retransmitted by loss recovery: a close either arrives or the
    peer's own lifetime limits (idle timeout) finish the job, matching
    RFC 9000 §10.2's closing/draining behaviour.
    """

    error_code: int = 0
    reason: str = ""

    retransmittable = False

    def wire_size(self) -> int:
        return 1 + 4 + 2 + len(self.reason.encode())
